// Tests for accelerator merging: pairwise saving estimation, the greedy
// loop, reusable accelerator grouping, and end-to-end savings.
#include <gtest/gtest.h>

#include "accel/model.h"
#include "merge/merger.h"
#include "select/selector.h"
#include "test_kernels.h"
#include "workloads/workloads.h"

namespace cayman::merge {
namespace {

using OpCounts = std::map<std::pair<ir::Opcode, bool>, unsigned>;

TEST(PairSavingTest, SharedExpensiveOpsSave) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  OpCounts a{{{ir::Opcode::FMul, true}, 2}, {{ir::Opcode::FAdd, true}, 1}};
  OpCounts b{{{ir::Opcode::FMul, true}, 1}, {{ir::Opcode::FAdd, true}, 2}};
  double saving = merger.pairSaving(a, b);
  // One shared FMul + one shared FAdd minus mux overhead: clearly positive.
  EXPECT_GT(saving, 0.0);
  EXPECT_LT(saving,
            tech.opInfo(ir::Opcode::FMul, ir::Type::f64()).areaUm2 +
                tech.opInfo(ir::Opcode::FAdd, ir::Type::f64()).areaUm2);
}

TEST(PairSavingTest, DisjointOpsSaveNothing) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  OpCounts a{{{ir::Opcode::FMul, true}, 2}};
  OpCounts b{{{ir::Opcode::SDiv, true}, 1}};
  EXPECT_DOUBLE_EQ(merger.pairSaving(a, b), 0.0);
}

TEST(PairSavingTest, CheapOpsNotWorthMuxes) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  // Sharing a single AND gate costs more mux area than it saves — a merger
  // keeps separate instances, so the estimated saving clamps to zero
  // instead of going negative.
  OpCounts a{{{ir::Opcode::And, true}, 1}};
  OpCounts b{{{ir::Opcode::And, true}, 1}};
  EXPECT_DOUBLE_EQ(merger.pairSaving(a, b), 0.0);
}

TEST(PairSavingTest, CheapSharedOpsNeverReduceSaving) {
  // Regression: per-op-class contributions used to go negative, so a pair
  // dominated by narrow/cheap ops reported less saving than its expensive
  // ops alone (or a bogus negative total).
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  OpCounts expensiveA{{{ir::Opcode::FMul, true}, 1}};
  OpCounts expensiveB{{{ir::Opcode::FMul, true}, 1}};
  double base = merger.pairSaving(expensiveA, expensiveB);
  ASSERT_GT(base, 0.0);

  OpCounts mixedA = expensiveA;
  OpCounts mixedB = expensiveB;
  mixedA[{ir::Opcode::And, true}] = 12;
  mixedB[{ir::Opcode::And, true}] = 12;
  mixedA[{ir::Opcode::Xor, true}] = 8;
  mixedB[{ir::Opcode::Xor, true}] = 8;
  EXPECT_GE(merger.pairSaving(mixedA, mixedB), base)
      << "cheap shared ops must not eat into the saving of expensive ones";

  // A pair made only of not-worth-sharing ops saves exactly nothing.
  OpCounts cheapA{{{ir::Opcode::And, true}, 12}, {{ir::Opcode::Xor, true}, 8}};
  EXPECT_DOUBLE_EQ(merger.pairSaving(cheapA, cheapA), 0.0);
}

struct MergePipeline {
  explicit MergePipeline(std::unique_ptr<ir::Module> m)
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        model(wpst, profile, tech, hls::InterfaceTiming{}, {}) {}

  select::Solution best(double budgetUm2) {
    select::SelectorParams params;
    params.areaBudgetUm2 = budgetUm2;
    return select::CandidateSelector(model, params).best();
  }

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  accel::AcceleratorModel model;
};

TEST(MergerTest, IdenticalKernelsMergeHeavily) {
  // 3mm has three identical matmul nests — the paper's showcase (74% / 70%
  // saving). Expect a large saving and one reusable accelerator covering
  // multiple kernels.
  MergePipeline p(workloads::build("3mm"));
  select::Solution best = p.best(5e5);
  ASSERT_GE(best.accelerators.size(), 2u);
  AcceleratorMerger merger(p.tech);
  MergeResult result = merger.run(best);
  EXPECT_GT(result.savingPercent(), 30.0);
  EXPECT_GE(result.reusableAccelerators, 1);
  EXPECT_GE(result.avgKernelsPerReusable, 2.0);
  EXPECT_LT(result.areaAfterUm2, result.areaBeforeUm2);
}

TEST(MergerTest, SingleAcceleratorSavesLittle) {
  // One hotspot (like doitgen in the paper, 5% saving): merging can only
  // share within the single accelerator's own blocks.
  MergePipeline p(testing::linearKernel());
  select::Solution best = p.best(5e5);
  AcceleratorMerger merger(p.tech);
  MergeResult result = merger.run(best);
  EXPECT_EQ(result.reusableAccelerators, 0);
  EXPECT_LT(result.savingPercent(), 30.0);
}

/// Two same-shaped FMul loops nested in one outer loop, so the outer-loop
/// region is a single accelerator whose blocks share expensive operators.
std::unique_ptr<ir::Module> twinLoopKernel() {
  auto module = std::make_unique<ir::Module>("twins");
  auto* x = module->addGlobal("x", ir::Type::f64(), 32);
  auto* y = module->addGlobal("y", ir::Type::f64(), 32);
  auto* z = module->addGlobal("z", ir::Type::f64(), 32);
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  kb.beginLoop(0, 8, "i");
  ir::Value* j = kb.beginLoop(0, 32, "j");
  kb.storeAt(y, j, kb.ir().fmul(kb.loadAt(x, j), kb.ir().f64(2.0)));
  kb.endLoop();
  ir::Value* k = kb.beginLoop(0, 32, "k");
  kb.storeAt(z, k, kb.ir().fmul(kb.loadAt(x, k), kb.ir().f64(3.0)));
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

TEST(MergerTest, SingleAcceleratorReportsZeroMergeSteps) {
  // Regression: the greedy loop used to pair two units of the *same*
  // accelerator, booking intra-accelerator sharing as cross-kernel reuse
  // while the group accounting saw a singleton. The paper merges datapaths
  // across accelerators only.
  MergePipeline p(twinLoopKernel());
  const analysis::Region* outer = nullptr;
  for (const analysis::Region* r : p.wpst.allRegions()) {
    if (r->kind() == analysis::RegionKind::Loop &&
        r->block()->name() == "i.header") {
      outer = r;
    }
  }
  ASSERT_NE(outer, nullptr);
  const std::vector<accel::AcceleratorConfig>& configs =
      p.model.generate(outer);
  ASSERT_FALSE(configs.empty());
  // One accelerator covering both FMul loops: plenty of shareable ops
  // between its own blocks, but nothing to merge across accelerators.
  select::Solution solo = select::Solution::fromConfig(configs.back());
  AcceleratorMerger merger(p.tech);
  MergeResult result = merger.run(solo);
  EXPECT_EQ(result.mergeSteps, 0);
  EXPECT_EQ(result.reusableAccelerators, 0);
  EXPECT_DOUBLE_EQ(result.areaAfterUm2, result.areaBeforeUm2);

  // Sanity: the same two loops as *separate* accelerators do merge.
  const analysis::Region* inner1 = nullptr;
  const analysis::Region* inner2 = nullptr;
  for (const analysis::Region* r : p.wpst.allRegions()) {
    if (r->kind() != analysis::RegionKind::Loop) continue;
    if (r->block()->name() == "j.header") inner1 = r;
    if (r->block()->name() == "k.header") inner2 = r;
  }
  ASSERT_NE(inner1, nullptr);
  ASSERT_NE(inner2, nullptr);
  select::Solution pair = select::Solution::merge(
      select::Solution::fromConfig(p.model.generate(inner1).back()),
      select::Solution::fromConfig(p.model.generate(inner2).back()));
  MergeResult merged = merger.run(pair);
  EXPECT_GE(merged.mergeSteps, 1);
  EXPECT_EQ(merged.reusableAccelerators, 1);
  EXPECT_LT(merged.areaAfterUm2, merged.areaBeforeUm2);
}

TEST(MergerTest, EmptySolutionIsNoop) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  MergeResult result = merger.run(select::Solution{});
  EXPECT_DOUBLE_EQ(result.areaBeforeUm2, 0.0);
  EXPECT_DOUBLE_EQ(result.areaAfterUm2, 0.0);
  EXPECT_EQ(result.mergeSteps, 0);
  EXPECT_DOUBLE_EQ(result.savingPercent(), 0.0);
}

TEST(MergerTest, MergingNeverIncreasesArea) {
  for (const char* name : {"3mm", "atax", "mvt", "jacobi-2d"}) {
    MergePipeline p(workloads::build(name));
    select::Solution best = p.best(5e5);
    AcceleratorMerger merger(p.tech);
    MergeResult result = merger.run(best);
    EXPECT_LE(result.areaAfterUm2, result.areaBeforeUm2 + 1e-6) << name;
    EXPECT_GE(result.areaAfterUm2, 0.0) << name;
  }
}

TEST(MergerTest, DeterministicAcrossRuns) {
  MergePipeline p(workloads::build("3mm"));
  select::Solution best = p.best(5e5);
  AcceleratorMerger merger(p.tech);
  MergeResult first = merger.run(best);
  MergeResult second = merger.run(best);
  EXPECT_DOUBLE_EQ(first.areaAfterUm2, second.areaAfterUm2);
  EXPECT_EQ(first.mergeSteps, second.mergeSteps);
}

}  // namespace
}  // namespace cayman::merge
