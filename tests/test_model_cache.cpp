// Tests for the persistent model cache: the context-free raw record codecs
// (the fuzzer's fixpoint invariant), the snapshot summary, the content
// hashes, and the full record/save/load/find recovery cycle — including the
// crash window between temp-file write and rename.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "accel/model.h"
#include "accel/model_cache.h"
#include "support/blobio.h"
#include "test_kernels.h"

namespace cayman::accel {
namespace {

namespace fs = std::filesystem;
using support::Expected;
using support::blobio::buildStream;
using support::blobio::writeFileAtomic;

struct Pipeline {
  explicit Pipeline(std::unique_ptr<ir::Module> m, ModelParams params = {})
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        model(wpst, profile, tech, hls::InterfaceTiming{}, params) {}

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  AcceleratorModel model;
};

const analysis::Region* loopRegionByHeader(const analysis::WPst& wpst,
                                           const char* header) {
  for (const analysis::Region* r : wpst.allRegions()) {
    if (r->kind() == analysis::RegionKind::Loop &&
        r->block()->name() == header) {
      return r;
    }
  }
  return nullptr;
}

RawMeta sampleMeta() {
  RawMeta meta;
  meta.schema = kModelCacheSchema;
  meta.irHash = 0x1122334455667788ull;
  meta.fingerprint = 0x99aabbccddeeff00ull;
  meta.moduleName = "sample";
  return meta;
}

/// Full-featured record touching every field the codec serializes.
RawRegionRecord sampleRecord() {
  RawRegionRecord record;
  record.regionId = 3;
  record.label = "loop i [depth 1]";
  record.estimateCalls = 12;
  record.schedBlockCalls = 34;
  RawConfig config;
  config.loops.push_back(RawLoopConfig{3, 4, true});
  config.loops.push_back(RawLoopConfig{5, 1, false});
  RawIfaceEntry entry;
  entry.blockIdx = 0;
  entry.instIdx = 2;
  entry.iface.kind = 2;
  entry.iface.partitions = 4;
  entry.iface.hasArray = true;
  entry.iface.arrayName = "A";
  entry.iface.footprintBytes = 512;
  entry.iface.promoted = true;
  config.ifaces.push_back(entry);
  config.cyclesBits = 0x4059000000000000ull;
  config.cpuCyclesBits = 0x40c3880000000000ull;
  config.areaBits = 0x40fd4c0000000000ull;
  config.numSeqBlocks = 1;
  config.numPipelinedRegions = 1;
  config.numCoupled = 2;
  config.numDecoupled = 1;
  config.numScratchpad = 1;
  record.configs.push_back(config);
  RawSchedInsert sched;
  sched.funcIdx = 0;
  sched.blockIdx = 1;
  sched.width = 4;
  RawIface sig;
  sig.kind = 0;
  sig.partitions = 1;
  sched.signature.push_back(sig);
  sched.latency = 9;
  sched.opAreaBits = 0x40a0000000000000ull;
  sched.regAreaBits = 0x4090000000000000ull;
  sched.numOps = 6;
  sched.starts.push_back(RawSchedStart{0, 0});
  sched.starts.push_back(RawSchedStart{2, 3});
  record.schedInserts.push_back(sched);
  return record;
}

TEST(RawCodecTest, MetaRoundTripsToFixpoint) {
  RawMeta meta = sampleMeta();
  std::string payload = encodeMeta(meta);
  ModelCacheLimits limits;
  Expected<RawMeta> decoded = decodeMeta(payload, limits);
  ASSERT_TRUE(decoded.ok()) << decoded.diagnostic().str();
  EXPECT_EQ(decoded.value().schema, meta.schema);
  EXPECT_EQ(decoded.value().irHash, meta.irHash);
  EXPECT_EQ(decoded.value().fingerprint, meta.fingerprint);
  EXPECT_EQ(decoded.value().moduleName, meta.moduleName);
  EXPECT_EQ(encodeMeta(decoded.value()), payload);
}

TEST(RawCodecTest, RegionRecordRoundTripsToFixpoint) {
  RawRegionRecord record = sampleRecord();
  std::string payload = encodeRegionRecord(record);
  ModelCacheLimits limits;
  Expected<RawRegionRecord> decoded = decodeRegionRecord(payload, limits);
  ASSERT_TRUE(decoded.ok()) << decoded.diagnostic().str();
  const RawRegionRecord& d = decoded.value();
  EXPECT_EQ(d.regionId, record.regionId);
  EXPECT_EQ(d.label, record.label);
  EXPECT_EQ(d.estimateCalls, record.estimateCalls);
  EXPECT_EQ(d.schedBlockCalls, record.schedBlockCalls);
  ASSERT_EQ(d.configs.size(), 1u);
  EXPECT_EQ(d.configs[0].loops.size(), 2u);
  EXPECT_EQ(d.configs[0].ifaces.size(), 1u);
  EXPECT_EQ(d.configs[0].ifaces[0].iface.arrayName, "A");
  ASSERT_EQ(d.schedInserts.size(), 1u);
  EXPECT_EQ(d.schedInserts[0].starts.size(), 2u);
  EXPECT_EQ(encodeRegionRecord(d), payload);
}

TEST(RawCodecTest, DecodeRejectsCrossedTags) {
  ModelCacheLimits limits;
  EXPECT_FALSE(decodeMeta(encodeRegionRecord(sampleRecord()), limits).ok());
  EXPECT_FALSE(decodeRegionRecord(encodeMeta(sampleMeta()), limits).ok());
  EXPECT_FALSE(decodeMeta("", limits).ok());
  EXPECT_FALSE(decodeRegionRecord("", limits).ok());
}

TEST(RawCodecTest, DecodeRejectsTrailingBytes) {
  ModelCacheLimits limits;
  std::string meta = encodeMeta(sampleMeta()) + "x";
  EXPECT_FALSE(decodeMeta(meta, limits).ok());
  std::string record = encodeRegionRecord(sampleRecord()) + "x";
  Expected<RawRegionRecord> decoded = decodeRegionRecord(record, limits);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.diagnostic().message.find("trailing bytes"),
            std::string::npos);
}

TEST(RawCodecTest, DecodeRejectsTruncatedPayload) {
  ModelCacheLimits limits;
  std::string payload = encodeRegionRecord(sampleRecord());
  for (size_t keep : {size_t{1}, size_t{5}, payload.size() / 2,
                      payload.size() - 1}) {
    EXPECT_FALSE(decodeRegionRecord(payload.substr(0, keep), limits).ok())
        << "kept " << keep << " bytes";
  }
}

TEST(RawCodecTest, DecodeRejectsZeroConfigs) {
  RawRegionRecord record = sampleRecord();
  record.configs.clear();
  record.schedInserts.clear();
  ModelCacheLimits limits;
  Expected<RawRegionRecord> decoded =
      decodeRegionRecord(encodeRegionRecord(record), limits);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.diagnostic().message.find("config count"),
            std::string::npos);
}

TEST(RawCodecTest, DecodeRejectsImplausibleCounterDelta) {
  ModelCacheLimits limits;
  RawRegionRecord record = sampleRecord();
  record.estimateCalls = limits.maxCounterDelta + 1;
  EXPECT_FALSE(decodeRegionRecord(encodeRegionRecord(record), limits).ok());
  record = sampleRecord();
  record.schedBlockCalls = limits.maxCounterDelta + 1;
  EXPECT_FALSE(decodeRegionRecord(encodeRegionRecord(record), limits).ok());
}

TEST(RawCodecTest, DecodeRejectsOutOfRangeEnumsAndBools) {
  ModelCacheLimits limits;
  // Encode accepts whatever the structs hold; decode must reject it.
  RawRegionRecord record = sampleRecord();
  record.configs[0].ifaces[0].iface.kind = 3;
  EXPECT_FALSE(decodeRegionRecord(encodeRegionRecord(record), limits).ok());
  record = sampleRecord();
  record.configs[0].ifaces[0].iface.partitions = 0;
  EXPECT_FALSE(decodeRegionRecord(encodeRegionRecord(record), limits).ok());
  record = sampleRecord();
  record.configs[0].loops[0].unroll = 0;
  EXPECT_FALSE(decodeRegionRecord(encodeRegionRecord(record), limits).ok());
  // A bool byte of 2 would break the re-encode fixpoint; rejected.
  std::string payload = encodeRegionRecord(sampleRecord());
  // The pipelined flag of the first loop sits right after tag + id +
  // label(str) + two u64 counters + config count + loop count + 2×u32.
  size_t boolAt = 1 + 4 + (4 + sampleRecord().label.size()) + 8 + 8 + 4 + 4 +
                  4 + 4;
  ASSERT_EQ(payload[boolAt], 1);  // pipelined=true in the sample
  payload[boolAt] = 2;
  EXPECT_FALSE(decodeRegionRecord(payload, limits).ok());
}

TEST(RawCodecTest, DecodeHonoursCountCaps) {
  ModelCacheLimits limits;
  limits.maxLoopsPerConfig = 1;
  RawRegionRecord record = sampleRecord();  // has 2 loops
  Expected<RawRegionRecord> decoded =
      decodeRegionRecord(encodeRegionRecord(record), limits);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.diagnostic().message.find("loop count"),
            std::string::npos);
}

TEST(SnapshotSummaryTest, SummarizesCleanStream) {
  RawRegionRecord second = sampleRecord();
  second.regionId = 7;
  std::string bytes =
      buildStream({encodeMeta(sampleMeta()), encodeRegionRecord(sampleRecord()),
                   encodeRegionRecord(second)});
  ModelCacheLimits limits;
  Expected<SnapshotSummary> summary = summarizeSnapshot(bytes, limits);
  ASSERT_TRUE(summary.ok()) << summary.diagnostic().str();
  EXPECT_EQ(summary.value().regionRecords, 2u);
  EXPECT_EQ(summary.value().configs, 2u);
  EXPECT_EQ(summary.value().schedInserts, 2u);
  EXPECT_EQ(summary.value().rejectedRecords, 0u);
  EXPECT_FALSE(summary.value().truncated);
  EXPECT_EQ(summary.value().meta.moduleName, "sample");
}

TEST(SnapshotSummaryTest, RejectsMissingMetaAndSchemaSkew) {
  ModelCacheLimits limits;
  EXPECT_FALSE(summarizeSnapshot(buildStream({}), limits).ok());
  EXPECT_FALSE(
      summarizeSnapshot(buildStream({encodeRegionRecord(sampleRecord())}),
                        limits)
          .ok());
  RawMeta skewed = sampleMeta();
  skewed.schema = kModelCacheSchema + 1;
  EXPECT_FALSE(
      summarizeSnapshot(buildStream({encodeMeta(skewed)}), limits).ok());
}

TEST(SnapshotSummaryTest, CountsDuplicateAndMalformedRecords) {
  std::string malformed = encodeRegionRecord(sampleRecord()) + "x";
  std::string bytes = buildStream(
      {encodeMeta(sampleMeta()), encodeRegionRecord(sampleRecord()),
       encodeRegionRecord(sampleRecord()), malformed});
  ModelCacheLimits limits;
  Expected<SnapshotSummary> summary = summarizeSnapshot(bytes, limits);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().regionRecords, 1u);
  EXPECT_EQ(summary.value().rejectedRecords, 2u);
  ASSERT_TRUE(summary.value().firstReject.has_value());
  EXPECT_NE(summary.value().firstReject->message.find("duplicate"),
            std::string::npos);
}

TEST(HashTest, IrContentHashPinsTheModule) {
  Pipeline a(testing::linearKernel());
  Pipeline b(testing::linearKernel());
  Pipeline c(testing::linearKernel(128));
  EXPECT_EQ(ModelCache::irContentHash(*a.module),
            ModelCache::irContentHash(*b.module));
  EXPECT_NE(ModelCache::irContentHash(*a.module),
            ModelCache::irContentHash(*c.module));
}

TEST(HashTest, FingerprintTracksEveryParameterFamily) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  hls::InterfaceTiming timing;
  ModelParams params;
  uint64_t base = ModelCache::modelFingerprint(params, tech, timing);
  EXPECT_EQ(ModelCache::modelFingerprint(params, tech, timing), base);

  ModelParams beta = params;
  beta.beta += 0.125;
  EXPECT_NE(ModelCache::modelFingerprint(beta, tech, timing), base);

  hls::TechLibrary bigger = tech;
  bigger.lsuArea += 1.0;
  EXPECT_NE(ModelCache::modelFingerprint(params, bigger, timing), base);

  hls::InterfaceTiming slower = timing;
  slower.decoupledLatency += 1;
  EXPECT_NE(ModelCache::modelFingerprint(params, tech, slower), base);
}

TEST(HashTest, SnapshotFileNameIsZeroPaddedHex) {
  EXPECT_EQ(ModelCache::snapshotFileName(0x1, 0xab),
            "model-0000000000000001-00000000000000ab.cayc");
}

/// Fresh per-test scratch directory; clears the inject hook on teardown.
class ModelCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cayman_mcache_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    unsetenv("CAYMAN_INJECT_CORRUPT");
    fs::remove_all(dir_);
  }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

void expectSameConfigs(const std::vector<AcceleratorConfig>& warm,
                       const std::vector<AcceleratorConfig>& cold) {
  ASSERT_EQ(warm.size(), cold.size());
  for (size_t i = 0; i < warm.size(); ++i) {
    const AcceleratorConfig& w = warm[i];
    const AcceleratorConfig& c = cold[i];
    // Estimates must survive the disk bit-exactly.
    EXPECT_EQ(w.cycles, c.cycles);
    EXPECT_EQ(w.cpuCycles, c.cpuCycles);
    EXPECT_EQ(w.areaUm2, c.areaUm2);
    EXPECT_EQ(w.numSeqBlocks, c.numSeqBlocks);
    EXPECT_EQ(w.numPipelinedRegions, c.numPipelinedRegions);
    EXPECT_EQ(w.numCoupled, c.numCoupled);
    EXPECT_EQ(w.numDecoupled, c.numDecoupled);
    EXPECT_EQ(w.numScratchpad, c.numScratchpad);
    ASSERT_EQ(w.loops.size(), c.loops.size());
    for (size_t j = 0; j < w.loops.size(); ++j) {
      EXPECT_EQ(w.loops[j].unroll, c.loops[j].unroll);
      EXPECT_EQ(w.loops[j].pipelined, c.loops[j].pipelined);
    }
    EXPECT_EQ(w.ifaces.size(), c.ifaces.size());
  }
}

TEST_F(ModelCacheTest, RecordSaveLoadFindRoundTrips) {
  Pipeline p(testing::linearKernel());
  const analysis::Region* loop = loopRegionByHeader(p.wpst, "i.header");
  ASSERT_NE(loop, nullptr);
  std::vector<AcceleratorConfig> cold = p.model.generate(loop);
  ASSERT_FALSE(cold.empty());

  uint64_t irHash = ModelCache::irContentHash(*p.module);
  uint64_t fp = ModelCache::modelFingerprint(p.model.params(), p.tech,
                                             p.model.timing());

  ModelCache writer(dir(), p.wpst, irHash, fp);
  EXPECT_EQ(writer.load(), 0u);  // missing file: clean cold start
  EXPECT_FALSE(writer.stats().fileFound);
  EXPECT_TRUE(writer.diagnostics().empty());

  writer.record(loop, cold, 3, 5, {});
  EXPECT_TRUE(writer.dirty());
  Expected<uint64_t> written = writer.save();
  ASSERT_TRUE(written.ok()) << written.diagnostic().str();
  EXPECT_GT(written.value(), 0u);
  EXPECT_FALSE(writer.dirty());
  EXPECT_TRUE(writer.stats().saved);
  EXPECT_EQ(writer.stats().savedRegions, 1u);

  ModelCache reader(dir(), p.wpst, irHash, fp);
  EXPECT_EQ(reader.load(), 1u);
  EXPECT_TRUE(reader.stats().fileFound);
  EXPECT_TRUE(reader.stats().fileUsable);

  const CachedRegion* hit = reader.find(loop);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->region, loop);
  EXPECT_EQ(hit->estimateCalls, 3u);
  EXPECT_EQ(hit->schedBlockCalls, 5u);
  expectSameConfigs(hit->configs, cold);

  // A region the snapshot lacks is a disk miss.
  const analysis::Region* other = nullptr;
  for (const analysis::Region* r : p.wpst.allRegions()) {
    if (r != loop) {
      other = r;
      break;
    }
  }
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(reader.find(other), nullptr);
  EXPECT_EQ(reader.stats().diskHits, 1u);
  EXPECT_EQ(reader.stats().diskMisses, 1u);
}

TEST_F(ModelCacheTest, SaveIsNoOpWhenCleanAndRecordIsIdempotent) {
  Pipeline p(testing::linearKernel());
  const analysis::Region* loop = loopRegionByHeader(p.wpst, "i.header");
  std::vector<AcceleratorConfig> cold = p.model.generate(loop);
  uint64_t irHash = ModelCache::irContentHash(*p.module);
  uint64_t fp = ModelCache::modelFingerprint(p.model.params(), p.tech,
                                             p.model.timing());

  ModelCache cache(dir(), p.wpst, irHash, fp);
  Expected<uint64_t> clean = cache.save();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value(), 0u);
  EXPECT_FALSE(support::blobio::fileExists(cache.path()));

  cache.record(loop, cold, 1, 1, {});
  cache.record(loop, cold, 99, 99, {});  // second record is a no-op
  ASSERT_TRUE(cache.save().ok());

  ModelCache reader(dir(), p.wpst, irHash, fp);
  EXPECT_EQ(reader.load(), 1u);
  const CachedRegion* hit = reader.find(loop);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->estimateCalls, 1u);
}

TEST_F(ModelCacheTest, IrHashSkewStartsCold) {
  Pipeline p(testing::linearKernel());
  uint64_t irHash = ModelCache::irContentHash(*p.module);
  uint64_t fp = ModelCache::modelFingerprint(p.model.params(), p.tech,
                                             p.model.timing());
  ModelCache cache(dir(), p.wpst, irHash, fp);

  RawMeta meta = sampleMeta();
  meta.irHash = irHash + 1;  // same file name, different content hash
  meta.fingerprint = fp;
  ASSERT_TRUE(writeFileAtomic(cache.path(),
                              buildStream({encodeMeta(meta)}))
                  .ok());
  EXPECT_EQ(cache.load(), 0u);
  EXPECT_TRUE(cache.stats().fileFound);
  EXPECT_FALSE(cache.stats().fileUsable);
  ASSERT_EQ(cache.diagnostics().size(), 1u);
  EXPECT_NE(cache.diagnostics()[0].message.find("IR content hash mismatch"),
            std::string::npos);
  EXPECT_EQ(cache.diagnostics()[0].stage, support::Stage::Cache);
}

TEST_F(ModelCacheTest, FingerprintAndSchemaSkewStartCold) {
  Pipeline p(testing::linearKernel());
  uint64_t irHash = ModelCache::irContentHash(*p.module);
  uint64_t fp = ModelCache::modelFingerprint(p.model.params(), p.tech,
                                             p.model.timing());
  {
    ModelCache cache(dir(), p.wpst, irHash, fp);
    RawMeta meta = sampleMeta();
    meta.irHash = irHash;
    meta.fingerprint = fp + 1;
    ASSERT_TRUE(
        writeFileAtomic(cache.path(), buildStream({encodeMeta(meta)})).ok());
    EXPECT_EQ(cache.load(), 0u);
    EXPECT_FALSE(cache.stats().fileUsable);
    ASSERT_FALSE(cache.diagnostics().empty());
    EXPECT_NE(cache.diagnostics()[0].message.find("fingerprint mismatch"),
              std::string::npos);
  }
  {
    ModelCache cache(dir(), p.wpst, irHash, fp);
    RawMeta meta = sampleMeta();
    meta.schema = kModelCacheSchema + 1;
    meta.irHash = irHash;
    meta.fingerprint = fp;
    ASSERT_TRUE(
        writeFileAtomic(cache.path(), buildStream({encodeMeta(meta)})).ok());
    EXPECT_EQ(cache.load(), 0u);
    ASSERT_FALSE(cache.diagnostics().empty());
    EXPECT_NE(cache.diagnostics()[0].message.find("schema version skew"),
              std::string::npos);
  }
}

TEST_F(ModelCacheTest, ResolveRejectsLabelMismatchAndDuplicates) {
  Pipeline p(testing::linearKernel());
  const analysis::Region* loop = loopRegionByHeader(p.wpst, "i.header");
  ASSERT_NE(loop, nullptr);
  uint64_t irHash = ModelCache::irContentHash(*p.module);
  uint64_t fp = ModelCache::modelFingerprint(p.model.params(), p.tech,
                                             p.model.timing());
  ModelCache cache(dir(), p.wpst, irHash, fp);

  RawMeta meta = sampleMeta();
  meta.irHash = irHash;
  meta.fingerprint = fp;
  meta.moduleName = p.module->name();

  RawRegionRecord good;
  good.regionId = static_cast<uint32_t>(loop->id());
  good.label = loop->label();
  RawConfig config;
  config.cyclesBits = 0x4059000000000000ull;
  config.cpuCyclesBits = 0x4059000000000000ull;
  config.areaBits = 0x4059000000000000ull;
  good.configs.push_back(config);

  RawRegionRecord mislabeled = good;
  mislabeled.label = "not the real label";

  // Stream: meta, mislabeled (rejected: label), good, good again (rejected:
  // duplicate id).
  ASSERT_TRUE(writeFileAtomic(
                  cache.path(),
                  buildStream({encodeMeta(meta),
                               encodeRegionRecord(mislabeled)}))
                  .ok());
  EXPECT_EQ(cache.load(), 0u);
  EXPECT_TRUE(cache.stats().fileUsable);
  EXPECT_EQ(cache.stats().rejectedRecords, 1u);
  ASSERT_FALSE(cache.diagnostics().empty());
  EXPECT_NE(cache.diagnostics()[0].message.find("label mismatch"),
            std::string::npos);

  ModelCache second(dir(), p.wpst, irHash, fp);
  ASSERT_TRUE(writeFileAtomic(
                  second.path(),
                  buildStream({encodeMeta(meta), encodeRegionRecord(good),
                               encodeRegionRecord(good)}))
                  .ok());
  EXPECT_EQ(second.load(), 1u);
  EXPECT_EQ(second.stats().rejectedRecords, 1u);
  EXPECT_NE(second.find(loop), nullptr);
}

TEST_F(ModelCacheTest, PerRecordDamageDegradesOnlyThatRegion) {
  Pipeline p(testing::dotRowsKernel());
  const analysis::Region* loopI = loopRegionByHeader(p.wpst, "i.header");
  const analysis::Region* loopJ = loopRegionByHeader(p.wpst, "j.header");
  ASSERT_NE(loopI, nullptr);
  ASSERT_NE(loopJ, nullptr);
  uint64_t irHash = ModelCache::irContentHash(*p.module);
  uint64_t fp = ModelCache::modelFingerprint(p.model.params(), p.tech,
                                             p.model.timing());

  ModelCache writer(dir(), p.wpst, irHash, fp);
  writer.record(loopI, p.model.generate(loopI), 1, 1, {});
  writer.record(loopJ, p.model.generate(loopJ), 1, 1, {});
  ASSERT_TRUE(writer.save().ok());

  // Flip the last byte: it lands in the last record's payload, so its CRC
  // rejects it while the rest of the snapshot stays warm.
  std::string path = writer.path();
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  ModelCache reader(dir(), p.wpst, irHash, fp);
  EXPECT_EQ(reader.load(), 1u);
  EXPECT_TRUE(reader.stats().fileUsable);
  EXPECT_EQ(reader.stats().rejectedRecords, 1u);
  ASSERT_FALSE(reader.diagnostics().empty());
  EXPECT_NE(reader.diagnostics()[0].message.find("checksum"),
            std::string::npos);
  // Exactly one of the two regions survived.
  bool iWarm = reader.find(loopI) != nullptr;
  bool jWarm = reader.find(loopJ) != nullptr;
  EXPECT_NE(iWarm, jWarm);
}

TEST_F(ModelCacheTest, CrashWindowKeepsOldSnapshotUsable) {
  Pipeline p(testing::dotRowsKernel());
  const analysis::Region* loopI = loopRegionByHeader(p.wpst, "i.header");
  const analysis::Region* loopJ = loopRegionByHeader(p.wpst, "j.header");
  ASSERT_NE(loopI, nullptr);
  ASSERT_NE(loopJ, nullptr);
  uint64_t irHash = ModelCache::irContentHash(*p.module);
  uint64_t fp = ModelCache::modelFingerprint(p.model.params(), p.tech,
                                             p.model.timing());

  // First generation publishes a one-region snapshot.
  ModelCache first(dir(), p.wpst, irHash, fp);
  first.record(loopI, p.model.generate(loopI), 1, 1, {});
  ASSERT_TRUE(first.save().ok());

  // Second process warms from it, learns a new region, then dies between
  // temp-file write and rename.
  ModelCache second(dir(), p.wpst, irHash, fp);
  EXPECT_EQ(second.load(), 1u);
  second.record(loopJ, p.model.generate(loopJ), 1, 1, {});
  setenv("CAYMAN_INJECT_CORRUPT", "crash:0", 1);
  Expected<uint64_t> crashed = second.save();
  ASSERT_FALSE(crashed.ok());
  EXPECT_NE(crashed.diagnostic().message.find("crash"), std::string::npos);
  unsetenv("CAYMAN_INJECT_CORRUPT");

  // Crash window: the temp file is the only debris; the published snapshot
  // still carries the old region and a fresh process warms from it.
  bool sawTemp = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      sawTemp = true;
    }
  }
  EXPECT_TRUE(sawTemp);
  ModelCache survivor(dir(), p.wpst, irHash, fp);
  EXPECT_EQ(survivor.load(), 1u);
  EXPECT_NE(survivor.find(loopI), nullptr);
  EXPECT_EQ(survivor.find(loopJ), nullptr);

  // Recovery: the crashed writer retries and publishes both regions.
  ASSERT_TRUE(second.save().ok());
  ModelCache recovered(dir(), p.wpst, irHash, fp);
  EXPECT_EQ(recovered.load(), 2u);
  EXPECT_NE(recovered.find(loopI), nullptr);
  EXPECT_NE(recovered.find(loopJ), nullptr);
}

TEST_F(ModelCacheTest, ModelReplaysWarmConfigsIdentically) {
  // Cold model generates and records through its attached cache.
  Pipeline cold(testing::linearKernel());
  const analysis::Region* coldLoop = loopRegionByHeader(cold.wpst, "i.header");
  ASSERT_NE(coldLoop, nullptr);
  ASSERT_TRUE(coldLoop->isCandidate());
  ASSERT_GT(cold.profile.cycles(coldLoop), 0.0);
  uint64_t irHash = ModelCache::irContentHash(*cold.module);
  uint64_t fp = ModelCache::modelFingerprint(cold.model.params(), cold.tech,
                                             cold.model.timing());
  ModelCache coldCache(dir(), cold.wpst, irHash, fp);
  coldCache.load();
  cold.model.attachPersistentCache(&coldCache);
  std::vector<AcceleratorConfig> coldConfigs = cold.model.generate(coldLoop);
  ASSERT_FALSE(coldConfigs.empty());
  EXPECT_EQ(coldCache.stats().diskMisses, 1u);
  ASSERT_TRUE(coldCache.save().ok());

  // A fresh pipeline (fresh pointers, same program) replays from disk.
  Pipeline warm(testing::linearKernel());
  const analysis::Region* warmLoop = loopRegionByHeader(warm.wpst, "i.header");
  ASSERT_NE(warmLoop, nullptr);
  EXPECT_EQ(ModelCache::irContentHash(*warm.module), irHash);
  ModelCache warmCache(dir(), warm.wpst, irHash, fp);
  EXPECT_GE(warmCache.load(), 1u);
  warm.model.attachPersistentCache(&warmCache);
  std::vector<AcceleratorConfig> warmConfigs = warm.model.generate(warmLoop);
  EXPECT_GE(warmCache.stats().diskHits, 1u);
  expectSameConfigs(warmConfigs, coldConfigs);
  // Every config resolves against the warm pipeline's own region objects.
  for (const AcceleratorConfig& config : warmConfigs) {
    EXPECT_EQ(config.region, warmLoop);
  }
}

}  // namespace
}  // namespace cayman::accel
