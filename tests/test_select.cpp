// Tests for candidate selection: Pareto fronts, the α-filter, the ⊗
// combine, and Algorithm 1's DP over the wPST.
#include <gtest/gtest.h>

#include "select/selector.h"
#include "test_kernels.h"

namespace cayman::select {
namespace {

constexpr double kRatio = 2.0;

Solution makeSolution(double area, double cpuCycles, double accelCycles) {
  Solution s;
  accel::AcceleratorConfig config;
  config.areaUm2 = area;
  config.cpuCycles = cpuCycles;
  config.cycles = accelCycles;
  s.accelerators.push_back(config);
  s.areaUm2 = area;
  s.cpuCycles = cpuCycles;
  s.accelCycles = accelCycles;
  return s;
}

TEST(SolutionTest, SpeedupMatchesEquationOne) {
  Solution s = makeSolution(100.0, 800.0, 100.0);
  // T_all=1000, T_cand=800, Cycle_cand/F in CPU cycles = 200.
  // Speedup = 1000 / (1000 - 800 + 200) = 2.5.
  EXPECT_DOUBLE_EQ(s.speedup(1000.0, kRatio), 2.5);
  EXPECT_DOUBLE_EQ(s.savedCycles(kRatio), 600.0);
  // Empty solution: no change.
  EXPECT_DOUBLE_EQ(Solution{}.speedup(1000.0, kRatio), 1.0);
}

TEST(SolutionTest, MergeAccumulates) {
  Solution a = makeSolution(10.0, 100.0, 20.0);
  Solution b = makeSolution(5.0, 50.0, 10.0);
  Solution m = Solution::merge(a, b);
  EXPECT_DOUBLE_EQ(m.areaUm2, 15.0);
  EXPECT_DOUBLE_EQ(m.cpuCycles, 150.0);
  EXPECT_DOUBLE_EQ(m.accelCycles, 30.0);
  EXPECT_EQ(m.accelerators.size(), 2u);
}

TEST(ParetoTest, DominatedSolutionsDropped) {
  std::vector<Solution> input;
  input.push_back(Solution{});                       // (0, 0)
  input.push_back(makeSolution(10, 100, 10));        // saved 80
  input.push_back(makeSolution(20, 100, 30));        // saved 40, dominated
  input.push_back(makeSolution(30, 300, 50));        // saved 200
  std::vector<Solution> front = pareto(input, kRatio);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_TRUE(front[0].empty());
  EXPECT_DOUBLE_EQ(front[1].areaUm2, 10.0);
  EXPECT_DOUBLE_EQ(front[2].areaUm2, 30.0);
}

TEST(ParetoTest, NegativeGainSolutionsDropped) {
  std::vector<Solution> input;
  input.push_back(Solution{});
  input.push_back(makeSolution(10, 100, 200));  // accelerator slower than CPU
  std::vector<Solution> front = pareto(input, kRatio);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_TRUE(front[0].empty());
}

TEST(ParetoTest, AreaTiesKeepBest) {
  std::vector<Solution> input;
  input.push_back(Solution{});
  input.push_back(makeSolution(10, 100, 40));  // saved 20
  input.push_back(makeSolution(10, 100, 10));  // saved 80 — same area, better
  std::vector<Solution> front = pareto(input, kRatio);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_DOUBLE_EQ(front[1].savedCycles(kRatio), 80.0);
}

TEST(FilterTest, EnforcesAlphaSpacing) {
  // Areas 0, 10, 11, 12, 30, 100 with increasing saved cycles.
  std::vector<Solution> front;
  front.push_back(Solution{});
  double saved = 10.0;
  for (double area : {10.0, 11.0, 12.0, 30.0, 100.0}) {
    front.push_back(makeSolution(area, saved * 3, saved));
    saved *= 2.0;
  }
  std::vector<Solution> filtered = filterByAlpha(front, 1.5);
  // 0 kept; 10 kept (first after empty since 10 > 1.5*max(0,1)); 11,12
  // dropped (within 1.5x of 10); 30 kept; 100 kept (last always kept).
  ASSERT_EQ(filtered.size(), 4u);
  EXPECT_DOUBLE_EQ(filtered[1].areaUm2, 10.0);
  EXPECT_DOUBLE_EQ(filtered[2].areaUm2, 30.0);
  EXPECT_DOUBLE_EQ(filtered[3].areaUm2, 100.0);
}

TEST(FilterTest, KeepsEndpointsAlways) {
  std::vector<Solution> front;
  front.push_back(Solution{});
  front.push_back(makeSolution(1.0, 10, 1));
  front.push_back(makeSolution(1.01, 20, 1));
  std::vector<Solution> filtered = filterByAlpha(front, 4.0);
  ASSERT_GE(filtered.size(), 2u);
  EXPECT_TRUE(filtered.front().empty());
  EXPECT_DOUBLE_EQ(filtered.back().areaUm2, 1.01);
}

TEST(FilterTest, AlphaOneIsIdentity) {
  std::vector<Solution> front;
  front.push_back(Solution{});
  front.push_back(makeSolution(1.0, 10, 1));
  front.push_back(makeSolution(1.5, 20, 1));
  EXPECT_EQ(filterByAlpha(front, 1.0).size(), front.size());
}

TEST(FilterTest, SizeTwoOrFewerIsIdentity) {
  // The α-filter always keeps both endpoints, so fronts of size <= 2 pass
  // through untouched regardless of how aggressive the filter is.
  std::vector<Solution> empty;
  EXPECT_TRUE(filterByAlpha(empty, 8.0).empty());
  std::vector<Solution> one{makeSolution(5.0, 100, 10)};
  EXPECT_EQ(filterByAlpha(one, 8.0).size(), 1u);
  std::vector<Solution> two{Solution{}, makeSolution(5.0, 100, 10)};
  std::vector<Solution> kept = filterByAlpha(two, 8.0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_TRUE(kept[0].empty());
  EXPECT_DOUBLE_EQ(kept[1].areaUm2, 5.0);
}

TEST(FilterTest, AlphaBelowOneIsIdentity) {
  std::vector<Solution> front;
  front.push_back(Solution{});
  front.push_back(makeSolution(1.0, 10, 1));
  front.push_back(makeSolution(1.5, 20, 1));
  front.push_back(makeSolution(2.0, 30, 1));
  EXPECT_EQ(filterByAlpha(front, 0.5).size(), front.size());
  EXPECT_EQ(filterByAlpha(front, 1.0).size(), front.size());
}

TEST(FilterTest, EqualAreaRunsCollapseToEndpoints) {
  // A run of equal-area interior solutions can never exceed α times the
  // previously kept area, so only the endpoints survive.
  std::vector<Solution> front;
  front.push_back(Solution{});
  for (int i = 0; i < 5; ++i) {
    front.push_back(makeSolution(10.0, 100 + 10 * i, 10));
  }
  std::vector<Solution> kept = filterByAlpha(front, 1.12);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_TRUE(kept[0].empty());
  EXPECT_DOUBLE_EQ(kept[1].areaUm2, 10.0);  // first of the run
  EXPECT_DOUBLE_EQ(kept[2].areaUm2, 10.0);  // last always retained
  EXPECT_DOUBLE_EQ(kept[2].cpuCycles, 140.0);
}

TEST(FilterTest, FirstAndLastAlwaysRetained) {
  std::vector<Solution> front;
  front.push_back(makeSolution(2.0, 10, 1));
  front.push_back(makeSolution(2.1, 20, 1));
  front.push_back(makeSolution(2.2, 30, 1));
  front.push_back(makeSolution(2.3, 40, 1));
  std::vector<Solution> kept = filterByAlpha(front, 100.0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept.front().areaUm2, 2.0);
  EXPECT_DOUBLE_EQ(kept.back().areaUm2, 2.3);
}

TEST(CombineTest, CrossProductsRespectBudget) {
  std::vector<Solution> a{Solution{}, makeSolution(60, 500, 50)};
  std::vector<Solution> b{Solution{}, makeSolution(70, 600, 60)};
  // Budget 100: the 60+70 union exceeds it.
  std::vector<Solution> combined = combine(a, b, 100.0, kRatio);
  for (const Solution& s : combined) {
    EXPECT_LE(s.areaUm2, 100.0);
  }
  // Both singles survive: they are mutually non-dominated.
  ASSERT_EQ(combined.size(), 3u);
  // Budget 200: the union appears and dominates nothing out.
  combined = combine(a, b, 200.0, kRatio);
  ASSERT_EQ(combined.size(), 4u);
  EXPECT_DOUBLE_EQ(combined.back().areaUm2, 130.0);
  EXPECT_EQ(combined.back().accelerators.size(), 2u);
}

// --------------------------------------------------------------------------
// Property tests over pseudo-random solution sets (deterministic LCG).
// --------------------------------------------------------------------------

/// Minimal deterministic generator — keeps the property inputs identical on
/// every run and platform.
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * static_cast<double>(next() % 100000) / 100000.0;
  }
};

std::vector<Solution> randomSolutions(Lcg& rng, size_t count) {
  std::vector<Solution> solutions;
  solutions.push_back(Solution{});
  for (size_t i = 1; i < count; ++i) {
    double area = rng.uniform(1.0, 500.0);
    double cpu = rng.uniform(0.0, 2000.0);
    double accel = rng.uniform(0.0, 1500.0);
    solutions.push_back(makeSolution(area, cpu, accel));
  }
  return solutions;
}

bool dominates(const Solution& a, const Solution& b, double ratio) {
  return a.areaUm2 <= b.areaUm2 && a.savedCycles(ratio) >= b.savedCycles(ratio);
}

TEST(ParetoPropertyTest, OutputIsMutuallyNonDominated) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL, 99999ULL}) {
    Lcg rng(seed);
    std::vector<Solution> front =
        pareto(randomSolutions(rng, 120), kRatio);
    for (size_t i = 0; i < front.size(); ++i) {
      for (size_t j = 0; j < front.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(dominates(front[i], front[j], kRatio))
            << "seed " << seed << ": solution " << i << " (area "
            << front[i].areaUm2 << ") dominates " << j << " (area "
            << front[j].areaUm2 << ")";
      }
    }
  }
}

TEST(ParetoPropertyTest, CombineNeverExceedsBudget) {
  for (uint64_t seed : {3ULL, 17ULL, 256ULL, 4096ULL}) {
    Lcg rng(seed);
    std::vector<Solution> a = pareto(randomSolutions(rng, 40), kRatio);
    std::vector<Solution> b = pareto(randomSolutions(rng, 40), kRatio);
    for (double budget : {50.0, 200.0, 700.0}) {
      for (const Solution& s : combine(a, b, budget, kRatio)) {
        EXPECT_LE(s.areaUm2, budget)
            << "seed " << seed << " budget " << budget;
      }
    }
  }
}

TEST(ParetoPropertyTest, CombineOutputAlsoNonDominated) {
  Lcg rng(77);
  std::vector<Solution> a = pareto(randomSolutions(rng, 30), kRatio);
  std::vector<Solution> b = pareto(randomSolutions(rng, 30), kRatio);
  std::vector<Solution> combined = combine(a, b, 600.0, kRatio);
  for (size_t i = 0; i < combined.size(); ++i) {
    for (size_t j = 0; j < combined.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(combined[i], combined[j], kRatio));
    }
  }
}

TEST(ParetoPropertyTest, OutputIsStrictlyMonotone) {
  // The postcondition combine()'s early budget break-out depends on (also
  // assert()ed inside pareto() in debug builds): strictly ascending area
  // with strictly increasing saved cycles.
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL, 99999ULL}) {
    Lcg rng(seed);
    std::vector<Solution> front = pareto(randomSolutions(rng, 120), kRatio);
    for (size_t i = 1; i < front.size(); ++i) {
      EXPECT_LT(front[i - 1].areaUm2, front[i].areaUm2) << "seed " << seed;
      EXPECT_LT(front[i - 1].savedCycles(kRatio),
                front[i].savedCycles(kRatio))
          << "seed " << seed;
    }
  }
}

// --------------------------------------------------------------------------
// Frontier representation: pareto / α-filter mirror the Solution overloads
// exactly (the combine and full-DP equivalences live in
// test_select_differential.cpp).
// --------------------------------------------------------------------------

std::vector<accel::AcceleratorConfig> randomConfigs(Lcg& rng, size_t count) {
  std::vector<accel::AcceleratorConfig> configs(count);
  for (accel::AcceleratorConfig& config : configs) {
    config.areaUm2 = rng.uniform(1.0, 500.0);
    config.cpuCycles = rng.uniform(0.0, 2000.0);
    config.cycles = rng.uniform(0.0, 1500.0);
  }
  return configs;
}

std::vector<Solution> solutionsFrom(
    const std::vector<accel::AcceleratorConfig>& configs) {
  std::vector<Solution> solutions{Solution{}};
  for (const accel::AcceleratorConfig& config : configs) {
    solutions.push_back(Solution::fromConfig(config));
  }
  return solutions;
}

std::vector<FrontierEntry> entriesFrom(
    const std::vector<accel::AcceleratorConfig>& configs,
    SolutionArena& arena) {
  std::vector<FrontierEntry> entries{FrontierEntry{}};
  for (const accel::AcceleratorConfig& config : configs) {
    entries.push_back(entryFromConfig(config, kRatio, arena));
  }
  return entries;
}

void expectSameFront(const std::vector<Solution>& solutions,
                     const std::vector<FrontierEntry>& entries,
                     const SolutionArena& arena) {
  ASSERT_EQ(solutions.size(), entries.size());
  for (size_t i = 0; i < solutions.size(); ++i) {
    // Bit-exact scalar agreement, not approximate.
    EXPECT_EQ(solutions[i].areaUm2, entries[i].areaUm2) << "index " << i;
    EXPECT_EQ(solutions[i].accelCycles, entries[i].accelCycles)
        << "index " << i;
    EXPECT_EQ(solutions[i].cpuCycles, entries[i].cpuCycles) << "index " << i;
    EXPECT_EQ(solutions[i].savedCycles(kRatio), entries[i].savedCycles)
        << "index " << i;
    Solution materialized = materialize(entries[i], arena);
    ASSERT_EQ(solutions[i].accelerators.size(),
              materialized.accelerators.size())
        << "index " << i;
    for (size_t k = 0; k < materialized.accelerators.size(); ++k) {
      EXPECT_TRUE(solutions[i].accelerators[k] == materialized.accelerators[k])
          << "index " << i << " accelerator " << k;
    }
  }
}

TEST(FrontierTest, ParetoMatchesSolutionOverloadAndIsStrict) {
  for (uint64_t seed : {5ULL, 21ULL, 77ULL, 31337ULL}) {
    Lcg rng(seed);
    std::vector<accel::AcceleratorConfig> configs = randomConfigs(rng, 120);
    SolutionArena arena;
    std::vector<Solution> sFront = pareto(solutionsFrom(configs), kRatio);
    std::vector<FrontierEntry> eFront = pareto(entriesFrom(configs, arena));
    expectSameFront(sFront, eFront, arena);
    for (size_t i = 1; i < eFront.size(); ++i) {
      EXPECT_LT(eFront[i - 1].areaUm2, eFront[i].areaUm2) << "seed " << seed;
      EXPECT_LT(eFront[i - 1].savedCycles, eFront[i].savedCycles)
          << "seed " << seed;
    }
  }
}

TEST(FrontierTest, FilterMatchesSolutionOverload) {
  for (double alpha : {1.02, 1.12, 1.5, 4.0}) {
    Lcg rng(99);
    std::vector<accel::AcceleratorConfig> configs = randomConfigs(rng, 80);
    SolutionArena arena;
    std::vector<Solution> sKept =
        filterByAlpha(pareto(solutionsFrom(configs), kRatio), alpha);
    std::vector<FrontierEntry> eKept =
        filterByAlpha(pareto(entriesFrom(configs, arena)), alpha);
    expectSameFront(sKept, eKept, arena);
  }
}

TEST(FrontierTest, MergeEntriesMatchesSolutionMerge) {
  Lcg rng(12);
  std::vector<accel::AcceleratorConfig> configs = randomConfigs(rng, 6);
  SolutionArena arena;
  Solution sa = Solution::fromConfig(configs[0]);
  Solution sb = Solution::merge(Solution::fromConfig(configs[1]),
                                Solution::fromConfig(configs[2]));
  FrontierEntry ea = entryFromConfig(configs[0], kRatio, arena);
  FrontierEntry eb = mergeEntries(entryFromConfig(configs[1], kRatio, arena),
                                  entryFromConfig(configs[2], kRatio, arena),
                                  kRatio, arena);
  Solution sm = Solution::merge(sa, sb);
  FrontierEntry em = mergeEntries(ea, eb, kRatio, arena);
  EXPECT_EQ(sm.areaUm2, em.areaUm2);
  EXPECT_EQ(sm.accelCycles, em.accelCycles);
  EXPECT_EQ(sm.cpuCycles, em.cpuCycles);
  EXPECT_EQ(sm.savedCycles(kRatio), em.savedCycles);
  // Materialization walks left-before-right: Solution::merge's
  // concatenation order.
  Solution materialized = materialize(em, arena);
  ASSERT_EQ(materialized.accelerators.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(sm.accelerators[k] == materialized.accelerators[k]);
  }
  // Merging with the empty entry is the identity on scalars and configs.
  FrontierEntry withEmpty = mergeEntries(em, FrontierEntry{}, kRatio, arena);
  EXPECT_EQ(withEmpty.areaUm2, em.areaUm2);
  EXPECT_EQ(materialize(withEmpty, arena).accelerators.size(), 3u);
}

// --------------------------------------------------------------------------
// Algorithm 1 end-to-end over real kernels.
// --------------------------------------------------------------------------

struct SelectPipeline {
  explicit SelectPipeline(std::unique_ptr<ir::Module> m,
                          double budgetUm2 = 5e5)
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        model(wpst, profile, tech, hls::InterfaceTiming{}, {}) {
    params.areaBudgetUm2 = budgetUm2;
  }

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  accel::AcceleratorModel model;
  SelectorParams params;
};

TEST(SelectorTest, FrontIsMonotone) {
  SelectPipeline p(testing::dotRowsKernel(24, 12));
  CandidateSelector selector(p.model, p.params);
  std::vector<Solution> front = selector.select();
  ASSERT_GE(front.size(), 2u);
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].areaUm2, front[i - 1].areaUm2);
    EXPECT_GT(front[i].savedCycles(p.params.clockRatio),
              front[i - 1].savedCycles(p.params.clockRatio));
  }
}

TEST(SelectorTest, SelectionsNeverOverlap) {
  SelectPipeline p(testing::dotRowsKernel(24, 12));
  CandidateSelector selector(p.model, p.params);
  for (const Solution& s : selector.select()) {
    // No accelerator's region may be an ancestor of another's.
    for (const auto& a : s.accelerators) {
      for (const auto& b : s.accelerators) {
        if (&a == &b) continue;
        for (const analysis::Region* up = b.region->parent(); up != nullptr;
             up = up->parent()) {
          EXPECT_NE(up, a.region)
              << "selected region nested inside another selection";
        }
      }
    }
  }
}

TEST(SelectorTest, BudgetIsRespected) {
  SelectPipeline tight(testing::dotRowsKernel(24, 12), 3e4);
  CandidateSelector selector(tight.model, tight.params);
  for (const Solution& s : selector.select()) {
    EXPECT_LE(s.areaUm2, tight.params.areaBudgetUm2);
  }
}

TEST(SelectorTest, LargerBudgetNeverWorse) {
  SelectPipeline p(testing::dotRowsKernel(24, 12));
  SelectorParams small = p.params;
  small.areaBudgetUm2 = 5e4;
  SelectorParams large = p.params;
  large.areaBudgetUm2 = 1e6;
  double savedSmall =
      CandidateSelector(p.model, small).best().savedCycles(2.0);
  double savedLarge =
      CandidateSelector(p.model, large).best().savedCycles(2.0);
  EXPECT_GE(savedLarge, savedSmall);
}

TEST(SelectorTest, PruningSkipsColdRegions) {
  SelectPipeline p(testing::dotRowsKernel(24, 12));
  SelectorParams aggressive = p.params;
  aggressive.pruneHotFraction = 0.2;
  CandidateSelector pruned(p.model, aggressive);
  pruned.select();
  SelectorParams lax = p.params;
  lax.pruneHotFraction = 0.0;
  CandidateSelector unpruned(p.model, lax);
  unpruned.select();
  EXPECT_GT(pruned.stats().regionsPruned, 0);
  EXPECT_LT(pruned.stats().configsGenerated,
            unpruned.stats().configsGenerated);
}

TEST(SelectorTest, BestPicksMaximumSaving) {
  SelectPipeline p(testing::dotRowsKernel(24, 12));
  CandidateSelector selector(p.model, p.params);
  std::vector<Solution> front = selector.select();
  Solution best = selector.best();
  for (const Solution& s : front) {
    EXPECT_GE(best.savedCycles(p.params.clockRatio),
              s.savedCycles(p.params.clockRatio));
  }
}

class AlphaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweepTest, LargerAlphaNeverEnlargesFrontOrBeatsBest) {
  SelectPipeline p(testing::dotRowsKernel(24, 12));
  SelectorParams fine = p.params;
  fine.alpha = GetParam();
  SelectorParams coarse = p.params;
  coarse.alpha = GetParam() * 1.5;
  CandidateSelector fineSel(p.model, fine);
  CandidateSelector coarseSel(p.model, coarse);
  std::vector<Solution> fineFront = fineSel.select();
  std::vector<Solution> coarseFront = coarseSel.select();
  EXPECT_GE(fineFront.size(), coarseFront.size());
  // The filter trades solution density for runtime; the best solution of a
  // coarser filter cannot beat the finer one's.
  EXPECT_GE(fineSel.best().savedCycles(2.0) + 1e-9,
            coarseSel.best().savedCycles(2.0));
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweepTest,
                         ::testing::Values(1.02, 1.05, 1.12, 1.3, 1.6));

}  // namespace
}  // namespace cayman::select
