// Fault-isolation tests for the evaluation driver: a failing workload must
// come back as a structured FAILED row while sibling rows stay byte-identical
// to a clean run, timeouts must surface as cancellation diagnostics, and the
// clean-run table format must not change at all.
#include <gtest/gtest.h>

#include <cstdlib>

#include "cayman/driver.h"

namespace cayman {
namespace {

using support::Stage;

const std::vector<std::string> kNames = {"atax", "bicg", "mvt"};
constexpr double kBudget = 0.25;

TEST(DriverFailureTest, CleanRunHasNoFailures) {
  std::vector<WorkloadEvaluation> evaluations =
      evaluateWorkloads(kNames, kBudget, 2);
  ASSERT_EQ(evaluations.size(), kNames.size());
  EXPECT_EQ(countFailures(evaluations), 0u);
  for (const WorkloadEvaluation& evaluation : evaluations) {
    EXPECT_TRUE(evaluation.ok());
  }
}

TEST(DriverFailureTest, InjectedFaultIsolatesToItsWorkload) {
  std::vector<WorkloadEvaluation> clean =
      evaluateWorkloads(kNames, kBudget, 1);

  // Inject a fault into bicg only (env hook, exactly what the CLI honors).
  ASSERT_EQ(setenv("CAYMAN_INJECT_FAULT", "bicg:select", 1), 0);
  std::vector<WorkloadEvaluation> faulty =
      evaluateWorkloads(kNames, kBudget, 2);
  ASSERT_EQ(unsetenv("CAYMAN_INJECT_FAULT"), 0);

  ASSERT_EQ(faulty.size(), clean.size());
  EXPECT_EQ(countFailures(faulty), 1u);

  for (size_t i = 0; i < faulty.size(); ++i) {
    if (clean[i].name == "bicg") {
      ASSERT_FALSE(faulty[i].ok());
      EXPECT_EQ(faulty[i].failure->stage, Stage::Select);
      EXPECT_NE(faulty[i].failure->message.find("injected fault"),
                std::string::npos);
      std::string line = formatEvaluationLine(faulty[i]);
      EXPECT_NE(line.find("FAILED select:"), std::string::npos);
    } else {
      // Sibling rows are byte-identical to the clean sequential run.
      ASSERT_TRUE(faulty[i].ok());
      EXPECT_EQ(formatEvaluationLine(faulty[i]),
                formatEvaluationLine(clean[i]))
          << clean[i].name;
    }
  }
}

TEST(DriverFailureTest, FailAfterStageOptionInjectsEverywhere) {
  FrameworkOptions options;
  options.failAfterStage = Stage::Profile;
  std::vector<WorkloadEvaluation> evaluations =
      evaluateWorkloads(kNames, kBudget, 2, options);
  ASSERT_EQ(evaluations.size(), kNames.size());
  EXPECT_EQ(countFailures(evaluations), kNames.size());
  for (const WorkloadEvaluation& evaluation : evaluations) {
    ASSERT_FALSE(evaluation.ok());
    EXPECT_EQ(evaluation.failure->stage, Stage::Profile);
  }
}

TEST(DriverFailureTest, ParseStageInjection) {
  FrameworkOptions options;
  options.failAfterStage = Stage::Parse;
  WorkloadEvaluation evaluation = evaluateWorkload("atax", kBudget, options);
  ASSERT_FALSE(evaluation.ok());
  EXPECT_EQ(evaluation.failure->stage, Stage::Parse);
  EXPECT_EQ(evaluation.name, "atax");
  EXPECT_EQ(evaluation.suite, "PolyBench");
}

TEST(DriverFailureTest, UnknownWorkloadIsAFailureRowNotACrash) {
  WorkloadEvaluation evaluation = evaluateWorkload("no-such-kernel", kBudget);
  ASSERT_FALSE(evaluation.ok());
  EXPECT_EQ(evaluation.failure->stage, Stage::Internal);
  EXPECT_NE(evaluation.failure->message.find("unknown workload"),
            std::string::npos);
  EXPECT_EQ(evaluation.name, "no-such-kernel");
}

TEST(DriverFailureTest, SlowCandidateGenerationTripsTheDeadline) {
  FrameworkOptions options;
  options.timeoutSeconds = 1.0;
  std::vector<WorkloadEvaluation> clean =
      evaluateWorkloads(kNames, kBudget, 1, options);
  ASSERT_EQ(countFailures(clean), 0u);

  // Force each candidate generation in bicg to stall 0.4s (the
  // CAYMAN_INJECT_FAULT-style env hook): the selector pre-pass generates one
  // region per poll, so the per-workload deadline must trip inside generate
  // — the checkpoint added for exactly this — while siblings stay clean.
  ASSERT_EQ(setenv("CAYMAN_INJECT_SLOW", "bicg:generate:400000", 1), 0);
  std::vector<WorkloadEvaluation> stalled =
      evaluateWorkloads(kNames, kBudget, 2, options);
  ASSERT_EQ(unsetenv("CAYMAN_INJECT_SLOW"), 0);

  ASSERT_EQ(stalled.size(), clean.size());
  EXPECT_EQ(countFailures(stalled), 1u);
  for (size_t i = 0; i < stalled.size(); ++i) {
    if (clean[i].name == "bicg") {
      ASSERT_FALSE(stalled[i].ok());
      EXPECT_EQ(stalled[i].failure->stage, Stage::Select);
      EXPECT_NE(stalled[i].failure->message.find("timeout"),
                std::string::npos);
      EXPECT_NE(formatEvaluationLine(stalled[i]).find("FAILED select:"),
                std::string::npos);
    } else {
      ASSERT_TRUE(stalled[i].ok());
      EXPECT_EQ(formatEvaluationLine(stalled[i]),
                formatEvaluationLine(clean[i]))
          << clean[i].name;
    }
  }
}

TEST(DriverFailureTest, TimeoutSurfacesAsCancellation) {
  FrameworkOptions options;
  // Effectively-zero deadline: the first cancellation checkpoint must trip.
  options.timeoutSeconds = 1e-9;
  WorkloadEvaluation evaluation = evaluateWorkload("atax", kBudget, options);
  ASSERT_FALSE(evaluation.ok());
  EXPECT_NE(evaluation.failure->message.find("timeout"), std::string::npos);
}

TEST(DriverFailureTest, GenerousTimeoutDoesNotPerturbResults) {
  WorkloadEvaluation clean = evaluateWorkload("atax", kBudget);
  FrameworkOptions options;
  options.timeoutSeconds = 3600.0;
  WorkloadEvaluation timed = evaluateWorkload("atax", kBudget, options);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(timed.ok());
  EXPECT_EQ(formatEvaluationLine(timed), formatEvaluationLine(clean));
}

TEST(DriverFailureTest, TableRendersFailuresAndOkAverage) {
  FrameworkOptions options;
  options.failAfterStage = Stage::Merge;
  std::vector<WorkloadEvaluation> evaluations =
      evaluateWorkloads({"atax"}, kBudget, 1, options);
  evaluations.push_back(evaluateWorkload("bicg", kBudget));

  std::string table = formatEvaluationTable(evaluations);
  EXPECT_NE(table.find("FAILED merge:"), std::string::npos);
  EXPECT_NE(table.find("FAILED: 1 of 2 workloads"), std::string::npos);
  // The average row is still present, computed over the ok rows.
  EXPECT_NE(table.find("average:"), std::string::npos);
}

TEST(DriverFailureTest, AllFailedTableOmitsAverage) {
  FrameworkOptions options;
  options.failAfterStage = Stage::Verify;
  std::vector<WorkloadEvaluation> evaluations =
      evaluateWorkloads({"atax", "bicg"}, kBudget, 1, options);
  ASSERT_EQ(countFailures(evaluations), 2u);
  std::string table = formatEvaluationTable(evaluations);
  EXPECT_EQ(table.find("average:"), std::string::npos);
  EXPECT_NE(table.find("FAILED: 2 of 2 workloads"), std::string::npos);
}

TEST(DriverFailureTest, CleanTableFormatIsUnchanged) {
  // The robustness layer must not change a single byte of clean output: no
  // failure summary, the historical average row, one line per workload.
  std::vector<WorkloadEvaluation> evaluations =
      evaluateWorkloads(kNames, kBudget, 2);
  std::string table = formatEvaluationTable(evaluations);
  EXPECT_EQ(table.find("FAILED"), std::string::npos);
  size_t lines = 0;
  for (char ch : table) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, kNames.size() + 2);  // header + rows + average
}

TEST(DriverFailureTest, LongDiagnosticsSurviveFormatting) {
  // formatLine used to truncate at 256 bytes; failure messages can be long.
  WorkloadEvaluation evaluation;
  evaluation.name = "atax";
  evaluation.suite = "PolyBench";
  evaluation.failure =
      support::Diagnostic{Stage::Profile, "atax", std::string(600, 'x')};
  std::string line = formatEvaluationLine(evaluation);
  EXPECT_GT(line.size(), 600u);
  EXPECT_NE(line.find(std::string(600, 'x')), std::string::npos);
}

}  // namespace
}  // namespace cayman
