// Tests for the support utilities.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"

namespace cayman {
namespace {

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("xyz", ',').size(), 1u);
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nvalue\r "), "value");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("solid"), "solid");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(startsWith("module \"x\"", "module"));
  EXPECT_FALSE(startsWith("mod", "module"));
  EXPECT_TRUE(startsWith("anything", ""));
}

TEST(StringsTest, FormatFixed) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
  EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(ParseLongTest, AcceptsFullyConsumedInRangeIntegers) {
  EXPECT_EQ(parseLong("42", 0, 100), 42);
  EXPECT_EQ(parseLong("-7", -10, 10), -7);
  EXPECT_EQ(parseLong("0", 0, 0), 0);
}

TEST(ParseLongTest, RejectsGarbageAndRangeViolations) {
  EXPECT_FALSE(parseLong("", 0, 100).has_value());
  EXPECT_FALSE(parseLong("8x", 0, 100).has_value());
  EXPECT_FALSE(parseLong("x8", 0, 100).has_value());
  EXPECT_FALSE(parseLong(" 8 ", 0, 100).has_value());
  EXPECT_FALSE(parseLong("1e2", 0, 1000).has_value());
  EXPECT_FALSE(parseLong("101", 0, 100).has_value());
  EXPECT_FALSE(parseLong("-1", 0, 100).has_value());
  EXPECT_FALSE(parseLong("99999999999999999999", 0, 100).has_value());
}

TEST(ParseDoubleTest, AcceptsFiniteInRangeValues) {
  EXPECT_DOUBLE_EQ(*parseDouble("0.25", 0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(*parseDouble("1", 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(*parseDouble("1e-3", 0.0, 1.0), 0.001);
}

TEST(ParseDoubleTest, RejectsGarbageNaNAndRangeViolations) {
  EXPECT_FALSE(parseDouble("", 0.0, 1.0).has_value());
  EXPECT_FALSE(parseDouble("0.25x", 0.0, 1.0).has_value());
  EXPECT_FALSE(parseDouble("nan", 0.0, 1.0).has_value());
  EXPECT_FALSE(parseDouble("0", 0.0, 1.0).has_value());  // minExclusive
  EXPECT_FALSE(parseDouble("-0.5", 0.0, 1.0).has_value());
  EXPECT_FALSE(parseDouble("1.5", 0.0, 1.0).has_value());
  EXPECT_FALSE(parseDouble("1e999", 0.0, 1e300).has_value());  // ERANGE
}

TEST(ParseJobsTest, SharedContractForFlagAndEnv) {
  EXPECT_EQ(*parseJobs("1"), 1u);
  EXPECT_EQ(*parseJobs("1024"), 1024u);
  EXPECT_FALSE(parseJobs("0").has_value());
  EXPECT_FALSE(parseJobs("-3").has_value());
  EXPECT_FALSE(parseJobs("8x").has_value());
  EXPECT_FALSE(parseJobs("1025").has_value());
  EXPECT_FALSE(parseJobs("banana").has_value());
}

TEST(JsonTest, DumpIsDeterministicAndInsertionOrdered) {
  namespace json = support::json;
  json::Value object = json::Value::object();
  object.set("zeta", 1);
  object.set("alpha", true);
  object.set("mid", "x");
  object.set("zeta", 2);  // overwrite keeps position
  EXPECT_EQ(object.dump(), "{\"zeta\":2,\"alpha\":true,\"mid\":\"x\"}");
}

TEST(JsonTest, NumberFormattingRoundTrips) {
  namespace json = support::json;
  for (double value : {0.25, 1.0 / 3.0, 1e300, 5e-324, -0.0, 123456.789}) {
    std::string text = json::formatNumber(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
  // Non-finite values are not representable in JSON.
  EXPECT_EQ(json::formatNumber(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(json::formatNumber(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonTest, ParseRoundTripsAndEscapes) {
  namespace json = support::json;
  const char* text =
      "{\"a\":[1,2.5,null,true,\"q\\\"uote\\n\"],\"b\":{\"c\":-3}}";
  support::Expected<json::Value> parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().dump(), text);
}

TEST(JsonTest, ParseRejectsGarbageWithPosition) {
  namespace json = support::json;
  support::Expected<json::Value> missing = json::parse("{\"a\":}");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.diagnostic().line, 1);
  EXPECT_GT(missing.diagnostic().col, 1);
  EXPECT_FALSE(json::parse("[1,2").ok());
  EXPECT_FALSE(json::parse("[1] trailing").ok());
  EXPECT_FALSE(json::parse("").ok());
  // Depth cap: a pathological nest fails instead of smashing the stack.
  std::string deep(100, '[');
  EXPECT_FALSE(json::parse(deep).ok());
}

TEST(ErrorTest, AssertMacroThrowsWithContext) {
  try {
    CAYMAN_ASSERT(1 == 2, "math broke");
    FAIL() << "assert did not throw";
  } catch (const Error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, PassingAssertIsSilent) {
  EXPECT_NO_THROW(CAYMAN_ASSERT(2 + 2 == 4, "fine"));
}

}  // namespace
}  // namespace cayman
