// Tests for the support utilities.
#include <gtest/gtest.h>

#include "support/error.h"
#include "support/strings.h"

namespace cayman {
namespace {

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("xyz", ',').size(), 1u);
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nvalue\r "), "value");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("solid"), "solid");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(startsWith("module \"x\"", "module"));
  EXPECT_FALSE(startsWith("mod", "module"));
  EXPECT_TRUE(startsWith("anything", ""));
}

TEST(StringsTest, FormatFixed) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
  EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(ErrorTest, AssertMacroThrowsWithContext) {
  try {
    CAYMAN_ASSERT(1 == 2, "math broke");
    FAIL() << "assert did not throw";
  } catch (const Error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, PassingAssertIsSilent) {
  EXPECT_NO_THROW(CAYMAN_ASSERT(2 + 2 == 4, "fine"));
}

}  // namespace
}  // namespace cayman
