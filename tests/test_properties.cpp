// Cross-cutting property tests over EVERY workload: end-to-end framework
// invariants that must hold regardless of program shape.
#include <gtest/gtest.h>

#include "cayman/framework.h"
#include "workloads/workloads.h"

namespace cayman {
namespace {

class FrameworkPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  static Framework makeFramework(const std::string& name) {
    return Framework(workloads::build(name));
  }
};

TEST_P(FrameworkPropertyTest, SpeedupAtLeastOneAndBudgetRespected) {
  Framework fw = makeFramework(GetParam());
  for (double budget : {0.25, 0.65}) {
    select::Solution best = fw.best(budget);
    EXPECT_LE(best.areaUm2, fw.budgetUm2(budget) + 1e-6);
    EXPECT_GE(fw.speedupOf(best), 1.0);
  }
}

TEST_P(FrameworkPropertyTest, SpeedupMonotoneInBudget) {
  Framework fw = makeFramework(GetParam());
  double previous = 0.0;
  for (double budget : {0.05, 0.25, 0.65}) {
    double speedup = fw.speedupOf(fw.best(budget));
    EXPECT_GE(speedup + 1e-9, previous) << "budget " << budget;
    previous = speedup;
  }
}

TEST_P(FrameworkPropertyTest, ParetoFrontIsStrictlyImproving) {
  Framework fw = makeFramework(GetParam());
  std::vector<select::Solution> front = fw.explore(0.65);
  double ratio = fw.options().clockRatio();
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].areaUm2, front[i - 1].areaUm2);
    EXPECT_GT(front[i].savedCycles(ratio), front[i - 1].savedCycles(ratio));
  }
}

TEST_P(FrameworkPropertyTest, SelectedKernelsNeverOverlap) {
  Framework fw = makeFramework(GetParam());
  select::Solution best = fw.best(0.65);
  for (const auto& a : best.accelerators) {
    for (const auto& b : best.accelerators) {
      if (&a == &b) continue;
      for (const analysis::Region* up = b.region->parent(); up != nullptr;
           up = up->parent()) {
        ASSERT_NE(up, a.region) << "nested selection in " << GetParam();
      }
    }
  }
}

TEST_P(FrameworkPropertyTest, TCandNeverExceedsTAll) {
  Framework fw = makeFramework(GetParam());
  select::Solution best = fw.best(0.65);
  EXPECT_LE(best.cpuCycles, fw.totalCpuCycles() + 1e-6);
  EXPECT_GE(best.cpuCycles, 0.0);
  EXPECT_GE(best.accelCycles, 0.0);
}

TEST_P(FrameworkPropertyTest, MergingNeverIncreasesArea) {
  Framework fw = makeFramework(GetParam());
  select::Solution best = fw.best(0.65);
  merge::MergeResult merged = fw.mergeSolution(best);
  EXPECT_LE(merged.areaAfterUm2, merged.areaBeforeUm2 + 1e-6);
  EXPECT_GE(merged.areaAfterUm2, 0.0);
  EXPECT_GE(merged.savingPercent(), 0.0);
  EXPECT_LE(merged.savingPercent(), 100.0);
}

TEST_P(FrameworkPropertyTest, CaymanAlwaysBeatsBothBaselines) {
  // The paper's headline claim holds per benchmark, not just on average.
  Framework fw = makeFramework(GetParam());
  EvaluationReport report = fw.evaluate(0.25);
  EXPECT_GT(report.overNovia, 1.0) << GetParam();
  EXPECT_GT(report.overQsCores, 1.0) << GetParam();
}

TEST_P(FrameworkPropertyTest, CoupledOnlyNeverBeatsFull) {
  FrameworkOptions restricted;
  restricted.coupledOnly = true;
  Framework full = makeFramework(GetParam());
  Framework coupled(workloads::build(GetParam()), restricted);
  EXPECT_GE(full.speedupOf(full.best(0.65)) + 1e-6,
            coupled.speedupOf(coupled.best(0.65)))
      << GetParam();
}

std::vector<std::string> names() {
  std::vector<std::string> result;
  for (const auto& info : workloads::all()) result.push_back(info.name);
  return result;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FrameworkPropertyTest, ::testing::ValuesIn(names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cayman
