// Unit tests for the IR substrate: construction, use lists, printing,
// parsing round-trips, and the verifier.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace cayman::ir {
namespace {

/// Builds: func @axpb(%n: i64) with loop  y[i] = k * x[i] + b.
std::unique_ptr<Module> buildLinearKernel() {
  auto module = std::make_unique<Module>("linear");
  GlobalArray* x = module->addGlobal("x", Type::f64(), 64);
  GlobalArray* y = module->addGlobal("y", Type::f64(), 64);
  Function* f =
      module->addFunction("axpb", Type::voidTy(), {{Type::i64(), "n"}});
  BasicBlock* entry = f->addBlock("entry");
  BasicBlock* header = f->addBlock("header");
  BasicBlock* body = f->addBlock("body");
  BasicBlock* exit = f->addBlock("exit");

  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(header);

  b.setInsertPoint(header);
  Instruction* iv = b.phi(Type::i64(), "i");
  Value* cond = b.icmp(CmpPred::LT, iv, f->argument(0), "cond");
  b.condBr(cond, body, exit);

  b.setInsertPoint(body);
  Value* xPtr = b.gep(x, iv, Type::f64(), "x.ptr");
  Value* xi = b.load(Type::f64(), xPtr, "xi");
  Value* scaled = b.fmul(xi, b.f64(2.5), "scaled");
  Value* shifted = b.fadd(scaled, b.f64(1.0), "shifted");
  Value* yPtr = b.gep(y, iv, Type::f64(), "y.ptr");
  b.store(shifted, yPtr);
  Value* next = b.add(iv, b.i64(1), "i.next");
  b.br(header);

  iv->addIncoming(b.i64(0), entry);
  iv->addIncoming(next, body);

  b.setInsertPoint(exit);
  b.ret();
  return module;
}

TEST(TypeTest, SingletonsAreInterned) {
  EXPECT_EQ(Type::i64(), Type::i64());
  EXPECT_NE(Type::i64(), Type::i32());
  EXPECT_EQ(Type::byName("f64"), Type::f64());
  EXPECT_EQ(Type::byName("bogus"), nullptr);
}

TEST(TypeTest, SizesAndWidths) {
  EXPECT_EQ(Type::i1()->sizeBytes(), 1u);
  EXPECT_EQ(Type::i32()->sizeBytes(), 4u);
  EXPECT_EQ(Type::i64()->sizeBytes(), 8u);
  EXPECT_EQ(Type::f32()->bitWidth(), 32u);
  EXPECT_EQ(Type::ptr()->bitWidth(), 64u);
  EXPECT_TRUE(Type::i1()->isInteger());
  EXPECT_FALSE(Type::ptr()->isInteger());
  EXPECT_TRUE(Type::f32()->isFloat());
}

TEST(ModuleTest, ConstantsAreInterned) {
  Module m("m");
  EXPECT_EQ(m.constI64(42), m.constI64(42));
  EXPECT_NE(m.constI64(42), m.constI64(43));
  EXPECT_NE(m.constI64(42), m.constI32(42));
  EXPECT_EQ(m.constF64(1.5), m.constF64(1.5));
}

TEST(ModuleTest, LookupByName) {
  auto module = buildLinearKernel();
  EXPECT_NE(module->globalByName("x"), nullptr);
  EXPECT_EQ(module->globalByName("z"), nullptr);
  EXPECT_NE(module->functionByName("axpb"), nullptr);
  EXPECT_EQ(module->entryFunction(), module->functionByName("axpb"));
}

TEST(ModuleTest, DuplicateFunctionThrows) {
  Module m("m");
  m.addFunction("f", Type::voidTy(), {});
  EXPECT_THROW(m.addFunction("f", Type::voidTy(), {}), Error);
}

TEST(UseListTest, OperandsRegisterUses) {
  auto module = buildLinearKernel();
  Function* f = module->functionByName("axpb");
  Argument* n = f->argument(0);
  ASSERT_EQ(n->users().size(), 1u);
  EXPECT_EQ(n->users()[0]->opcode(), Opcode::ICmp);
}

TEST(UseListTest, ReplaceAllUsesWith) {
  Module m("m");
  Function* f = m.addFunction("f", Type::i64(),
                              {{Type::i64(), "a"}, {Type::i64(), "b"}});
  BasicBlock* entry = f->addBlock("entry");
  IRBuilder b(&m);
  b.setInsertPoint(entry);
  Value* sum = b.add(f->argument(0), f->argument(0), "sum");
  b.ret(sum);

  EXPECT_EQ(f->argument(0)->users().size(), 2u);  // both operands of add
  f->argument(0)->replaceAllUsesWith(f->argument(1));
  EXPECT_TRUE(f->argument(0)->users().empty());
  EXPECT_EQ(f->argument(1)->users().size(), 2u);
  Instruction* add = dynCast<Instruction>(sum);
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->operand(0), f->argument(1));
  EXPECT_EQ(add->operand(1), f->argument(1));
}

TEST(UseListTest, RemovingInstructionDropsUses) {
  Module m("m");
  Function* f = m.addFunction("f", Type::voidTy(), {{Type::i64(), "a"}});
  BasicBlock* entry = f->addBlock("entry");
  IRBuilder b(&m);
  b.setInsertPoint(entry);
  Value* doubled = b.add(f->argument(0), f->argument(0), "d");
  b.ret();
  EXPECT_EQ(f->argument(0)->users().size(), 2u);
  entry->remove(dynCast<Instruction>(doubled)).reset();
  EXPECT_TRUE(f->argument(0)->users().empty());
}

TEST(BasicBlockTest, TerminatorAndPartitions) {
  auto module = buildLinearKernel();
  Function* f = module->functionByName("axpb");
  BasicBlock* header = f->blockByName("header");
  ASSERT_NE(header, nullptr);
  ASSERT_TRUE(header->hasTerminator());
  EXPECT_EQ(header->terminator()->opcode(), Opcode::CondBr);
  EXPECT_EQ(header->phis().size(), 1u);
  EXPECT_EQ(header->body().size(), 1u);  // icmp only
  EXPECT_EQ(header->successors().size(), 2u);
}

TEST(BasicBlockTest, AppendingPastTerminatorThrows) {
  Module m("m");
  Function* f = m.addFunction("f", Type::voidTy(), {});
  BasicBlock* entry = f->addBlock("entry");
  IRBuilder b(&m);
  b.setInsertPoint(entry);
  b.ret();
  EXPECT_THROW(b.ret(), Error);
}

TEST(BuilderTest, TypeChecksRejectMismatches) {
  Module m("m");
  Function* f = m.addFunction("f", Type::voidTy(),
                              {{Type::i64(), "a"}, {Type::f64(), "x"}});
  BasicBlock* entry = f->addBlock("entry");
  IRBuilder b(&m);
  b.setInsertPoint(entry);
  EXPECT_THROW(b.add(f->argument(0), f->argument(1)), Error);
  EXPECT_THROW(b.fadd(f->argument(0), f->argument(0)), Error);
  EXPECT_THROW(b.icmp(CmpPred::LT, f->argument(1), f->argument(1)), Error);
  EXPECT_THROW(b.load(Type::f64(), f->argument(0)), Error);
}

TEST(PhiTest, IncomingLookup) {
  auto module = buildLinearKernel();
  Function* f = module->functionByName("axpb");
  BasicBlock* header = f->blockByName("header");
  Instruction* phi = header->phis()[0];
  BasicBlock* entry = f->blockByName("entry");
  BasicBlock* body = f->blockByName("body");
  EXPECT_EQ(phi->incomingValueFor(entry), module->constI64(0));
  EXPECT_EQ(phi->incomingValueFor(body)->name(), "i.next");
}

TEST(CloneTest, CloneCopiesPayload) {
  auto module = buildLinearKernel();
  Function* f = module->functionByName("axpb");
  BasicBlock* body = f->blockByName("body");
  Instruction* gepInst = nullptr;
  for (const auto& inst : body->instructions()) {
    if (inst->opcode() == Opcode::Gep) gepInst = inst.get();
  }
  ASSERT_NE(gepInst, nullptr);
  auto copy = gepInst->clone();
  EXPECT_EQ(copy->opcode(), Opcode::Gep);
  EXPECT_EQ(copy->gepElemSize(), 8u);
  EXPECT_EQ(copy->operand(0), gepInst->operand(0));
}

TEST(VerifierTest, WellFormedModulePasses) {
  auto module = buildLinearKernel();
  EXPECT_TRUE(verifyModule(*module).empty());
  EXPECT_NO_THROW(verifyOrThrow(*module));
}

TEST(VerifierTest, MissingTerminatorReported) {
  Module m("m");
  Function* f = m.addFunction("f", Type::voidTy(), {});
  f->addBlock("entry");
  std::vector<std::string> errors = verifyModule(m);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("terminator"), std::string::npos);
  EXPECT_THROW(verifyOrThrow(m), Error);
}

TEST(VerifierTest, PhiPredMismatchReported) {
  Module m("m");
  Function* f = m.addFunction("f", Type::voidTy(), {});
  BasicBlock* entry = f->addBlock("entry");
  BasicBlock* next = f->addBlock("next");
  IRBuilder b(&m);
  b.setInsertPoint(entry);
  b.br(next);
  b.setInsertPoint(next);
  Instruction* phi = b.phi(Type::i64(), "p");
  phi->addIncoming(m.constI64(0), next);  // wrong: `next` is not a pred
  b.ret();
  std::vector<std::string> errors = verifyModule(m);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("phi"), std::string::npos);
}

TEST(VerifierTest, RetTypeMismatchReported) {
  Module m("m");
  Function* f = m.addFunction("f", Type::i64(), {});
  BasicBlock* entry = f->addBlock("entry");
  IRBuilder b(&m);
  b.setInsertPoint(entry);
  b.ret();  // missing value
  std::vector<std::string> errors = verifyModule(m);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("ret"), std::string::npos);
}

TEST(PrinterTest, ContainsStructure) {
  auto module = buildLinearKernel();
  std::string text = printModule(*module);
  EXPECT_NE(text.find("module \"linear\""), std::string::npos);
  EXPECT_NE(text.find("global @x : f64[64]"), std::string::npos);
  EXPECT_NE(text.find("func @axpb"), std::string::npos);
  EXPECT_NE(text.find("phi i64"), std::string::npos);
  EXPECT_NE(text.find("condbr"), std::string::npos);
}

TEST(ParserTest, RoundTripIsStable) {
  auto module = buildLinearKernel();
  std::string once = printModule(*module);
  auto reparsed = parseModule(once);
  EXPECT_TRUE(verifyModule(*reparsed).empty());
  std::string twice = printModule(*reparsed);
  EXPECT_EQ(once, twice);
}

TEST(ParserTest, ParsesCallsAndConversions) {
  const char* text = R"(module "callconv" {
global @buf : i32[16]

func @helper(%v: i64) -> i64 {
entry:
  %doubled = add i64 %v, %v
  ret i64 %doubled
}

func @main() -> void {
entry:
  %r = call @helper(21)
  %f = sitofp i64 %r to f64
  %half = fmul f64 %f, 0.5
  %back = fptosi f64 %half to i64
  %small = trunc i64 %back to i32
  %ptr = gep @buf, 0, elem 4
  store i32 %small, %ptr
  ret
}
}
)";
  auto module = parseModule(text);
  EXPECT_TRUE(verifyModule(*module).empty());
  Function* main = module->functionByName("main");
  ASSERT_NE(main, nullptr);
  // Round-trip again for stability.
  std::string printed = printModule(*module);
  auto reparsed = parseModule(printed);
  EXPECT_EQ(printed, printModule(*reparsed));
}

TEST(ParserTest, ForwardReferencesInPhisResolve) {
  auto module = buildLinearKernel();
  std::string text = printModule(*module);
  auto reparsed = parseModule(text);
  Function* f = reparsed->functionByName("axpb");
  BasicBlock* header = f->blockByName("header");
  ASSERT_NE(header, nullptr);
  Instruction* phi = header->phis().at(0);
  // The loop-carried incoming value must resolve to the add in the body.
  Value* carried = phi->incomingValueFor(f->blockByName("body"));
  const Instruction* carriedInst = dynCast<Instruction>(carried);
  ASSERT_NE(carriedInst, nullptr);
  EXPECT_EQ(carriedInst->opcode(), Opcode::Add);
}

TEST(ParserTest, SyntaxErrorsThrow) {
  EXPECT_THROW(parseModule("not a module"), Error);
  EXPECT_THROW(parseModule("module \"m\" {\nfunc @f() -> void {\nentry:\n"
                           "  bogus i64 %x\n}\n}\n"),
               Error);
  EXPECT_THROW(parseModule("module \"m\" {\nfunc @f() -> void {\nentry:\n"
                           "  %x = add i64 %undefined, 1\n  ret\n}\n}\n"),
               Error);
}

}  // namespace
}  // namespace cayman::ir
