// Tests for the energy-model extension.
#include <gtest/gtest.h>

#include "accel/energy.h"
#include "cayman/framework.h"
#include "workloads/workloads.h"

namespace cayman::accel {
namespace {

TEST(EnergyTest, EmptySolutionCostsNothing) {
  Framework fw(workloads::build("atax"));
  EnergyModel energy(fw.model());
  EnergyReport report =
      energy.estimate(select::Solution{}, fw.totalCpuCycles());
  EXPECT_DOUBLE_EQ(report.cpuEnergyUj, 0.0);
  EXPECT_DOUBLE_EQ(report.accelEnergyUj, 0.0);
  EXPECT_DOUBLE_EQ(report.idleLeakageUj, 0.0);
  EXPECT_DOUBLE_EQ(report.savingsFactor(), 1.0);
}

TEST(EnergyTest, OffloadingSavesEnergyOnHotKernels) {
  // The accelerator finishes the work in far fewer cycles on specialized
  // hardware, so offloaded energy must come out below the CPU's.
  Framework fw(workloads::build("3mm"));
  select::Solution best = fw.best(0.25);
  ASSERT_FALSE(best.empty());
  EnergyModel energy(fw.model());
  EnergyReport report = energy.estimate(best, fw.totalCpuCycles());
  EXPECT_GT(report.cpuEnergyUj, 0.0);
  EXPECT_GT(report.accelEnergyUj, 0.0);
  EXPECT_GT(report.savingsFactor(), 1.0) << "offload should save energy";
}

TEST(EnergyTest, IdleLeakageProportionalToArea) {
  // Same kernels and coverage, artificially doubled area: idle leakage must
  // double (it is area x idle-time), dynamic energy must not change.
  Framework fw(workloads::build("mvt"));
  select::Solution best = fw.best(0.25);
  ASSERT_FALSE(best.empty());
  select::Solution doubled = best;
  doubled.areaUm2 *= 2.0;
  EnergyModel energy(fw.model());
  EnergyReport a = energy.estimate(best, fw.totalCpuCycles());
  EnergyReport b = energy.estimate(doubled, fw.totalCpuCycles());
  EXPECT_NEAR(b.idleLeakageUj, 2.0 * a.idleLeakageUj, 1e-12);
  EXPECT_GT(a.idleLeakageUj, 0.0);
}

TEST(EnergyTest, ParamsScaleLinearly) {
  Framework fw(workloads::build("bicg"));
  select::Solution best = fw.best(0.25);
  EnergyParams doubled;
  doubled.cpuPowerMw *= 2.0;
  EnergyModel base(fw.model());
  EnergyModel hot(fw.model(), doubled);
  EnergyReport a = base.estimate(best, fw.totalCpuCycles());
  EnergyReport b = hot.estimate(best, fw.totalCpuCycles());
  EXPECT_NEAR(b.cpuEnergyUj, 2.0 * a.cpuEnergyUj, 1e-9);
  EXPECT_DOUBLE_EQ(b.accelEnergyUj, a.accelEnergyUj);
}

}  // namespace
}  // namespace cayman::accel
