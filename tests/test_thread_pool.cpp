// Tests for the support thread pool: future plumbing, ordered parallel
// maps, exception propagation, and concurrent-submission stress (the TSan
// CI job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "support/error.h"
#include "support/thread_pool.h"

namespace cayman {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, DefaultWorkersIsNeverZero) {
  EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
  ThreadPool zero(0);  // clamped, not rejected
  EXPECT_EQ(zero.workers(), 1u);
}

TEST(ThreadPoolTest, MoreWorkersThanCoresIsFine) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.workers(), 8u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 999LL * 1000 / 2);
}

TEST(ThreadPoolTest, ParallelIndexMapPreservesOrder) {
  ThreadPool pool(4);
  std::vector<size_t> results =
      parallelIndexMap(pool, 257, [](size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 257u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelIndexMapMatchesSequentialExactly) {
  // The determinism contract: a pure fn(i) yields the same vector whether
  // the pool has 1 worker or many.
  auto fn = [](size_t i) {
    double x = 1.0;
    for (size_t k = 0; k < i % 17; ++k) x = x * 1.5 + static_cast<double>(i);
    return x;
  };
  ThreadPool one(1);
  ThreadPool many(8);
  std::vector<double> sequential = parallelIndexMap(one, 300, fn);
  std::vector<double> parallel = parallelIndexMap(many, 300, fn);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i], parallel[i]);  // bit-identical, no tolerance
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.submit([]() -> int { throw Error("task failed"); });
  EXPECT_THROW(future.get(), Error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ConcurrentSubmittersStress) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &total] {
      std::vector<std::future<int>> futures;
      for (int i = 1; i <= 100; ++i) {
        futures.push_back(pool.submit([i] { return i; }));
      }
      for (auto& f : futures) total += f.get();
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4LL * 100 * 101 / 2);
}

TEST(ThreadPoolTest, ParallelIndexMapSurfacesFirstErrorByIndex) {
  ThreadPool pool(4);
  // Several indices fail; parallelIndexMap collects futures in index order,
  // so the caller must see index 3's error, never index 7's, regardless of
  // which worker throws first in wall-clock time.
  try {
    parallelIndexMap(pool, 16, [](size_t i) -> int {
      if (i == 3) throw Error("boom at 3");
      if (i == 7) throw Error("boom at 7");
      return static_cast<int>(i);
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom at 3");
  }
  // Abandoned sibling futures (including the other throwing one) must not
  // deadlock or poison the pool.
  EXPECT_EQ(pool.submit([] { return 11; }).get(), 11);
}

// Both exception-propagation tests join the pool (scope exit) before
// calling get(): reading a rethrown exception while the worker drops its
// last reference to the future's shared state races on the exception
// storage as far as TSan can see (the refcount ordering lives inside
// uninstrumented libstdc++), and the join supplies an explicit
// happens-before.
TEST(ThreadPoolTest, EveryTaskThrowingDoesNotDeadlock) {
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([]() -> int { throw Error("always"); }));
    }
    // Still usable while the throwing tasks drain.
    EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
  }
  int caught = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const Error&) {
      ++caught;
    }
  }
  EXPECT_EQ(caught, 64);
}

TEST(ThreadPoolTest, NonStdExceptionPropagatesThroughFuture) {
  std::future<int> future;
  {
    ThreadPool pool(2);
    future = pool.submit([]() -> int { throw 42; });
    EXPECT_EQ(pool.submit([] { return 6; }).get(), 6);
  }
  try {
    future.get();
    FAIL() << "expected int exception";
  } catch (int value) {
    EXPECT_EQ(value, 42);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&ran] { ++ran; }));
    }
  }  // destructor joins after the queue drains
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, SubmitDuringShutdownThrows) {
  // A task still running while the destructor drains must see submit()
  // throw, not have its subtask silently dropped (a dropped task is a hang
  // in the submitter). The pool object stays alive until the destructor
  // returns, and the destructor joins the workers, so the capture is safe.
  std::atomic<bool> sawThrow{false};
  std::atomic<bool> taskStarted{false};
  {
    ThreadPool pool(1);
    pool.submitRaw([&pool, &sawThrow, &taskStarted] {
      taskStarted.store(true);
      while (!pool.stopping()) std::this_thread::yield();
      try {
        pool.submitRaw([] {});
      } catch (const std::runtime_error&) {
        sawThrow.store(true);
      }
    });
    while (!taskStarted.load()) std::this_thread::yield();
  }
  EXPECT_TRUE(sawThrow.load());
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  pool.ensureWorkers(4);
  EXPECT_EQ(pool.workers(), 4u);
  pool.ensureWorkers(2);  // no-op: never shrinks
  EXPECT_EQ(pool.workers(), 4u);
  pool.ensureWorkers(4);  // no-op: already there
  EXPECT_EQ(pool.workers(), 4u);
  // The grown pool still runs work on every path.
  std::vector<int> results = parallelIndexMap(
      pool, 64, [](size_t i) { return static_cast<int>(i) * 2; });
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPoolTest, SharedPoolIsAProcessSingletonThatGrows) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  unsigned before = a.workers();
  a.ensureWorkers(before + 1);
  EXPECT_GE(ThreadPool::shared().workers(), before + 1);
  EXPECT_EQ(a.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, InPoolTaskReflectsExecutionContext) {
  EXPECT_FALSE(ThreadPool::inPoolTask());
  ThreadPool pool(2);
  EXPECT_TRUE(pool.submit([] { return ThreadPool::inPoolTask(); }).get());
  EXPECT_FALSE(ThreadPool::inPoolTask());
}

TEST(ThreadPoolTest, ParallelIndexMapSubmitOrderOnlyChangesEnqueue) {
  ThreadPool pool(4);
  std::vector<size_t> reversed(100);
  for (size_t i = 0; i < reversed.size(); ++i) {
    reversed[i] = reversed.size() - 1 - i;
  }
  std::vector<size_t> results = parallelIndexMap(
      pool, 100, [](size_t i) { return i * 3; }, reversed);
  ASSERT_EQ(results.size(), 100u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * 3);  // index order, not submit order
  }
  // The lowest-index exception surfaces even when it was enqueued last.
  try {
    parallelIndexMap(
        pool, 8,
        [](size_t i) -> int {
          if (i == 1) throw Error("boom at 1");
          if (i == 6) throw Error("boom at 6");
          return 0;
        },
        reversed = {7, 6, 5, 4, 3, 2, 1, 0});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom at 1");
  }
}

TEST(TaskGroupTest, WaitHelpsOnSingleWorkerPool) {
  // The helping-wait contract: a task on a 1-worker pool fans out subtasks
  // and joins them without deadlock — the waiter itself runs them inline.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::future<void> outer = pool.submit([&pool, &ran] {
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
      group.run([&ran] { ++ran; });
    }
    group.wait();
  });
  outer.get();
  EXPECT_EQ(ran.load(), 16);
}

TEST(TaskGroupTest, NestedGroupsDoNotDeadlock) {
  // Two levels of fan-out on a pool smaller than the task tree.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  std::future<void> outer = pool.submit([&pool, &leaves] {
    TaskGroup top(pool);
    for (int i = 0; i < 4; ++i) {
      top.run([&pool, &leaves] {
        TaskGroup inner(pool);
        for (int j = 0; j < 4; ++j) {
          inner.run([&leaves] { ++leaves; });
        }
        inner.wait();
      });
    }
    top.wait();
  });
  outer.get();
  EXPECT_EQ(leaves.load(), 16);
}

TEST(TaskGroupTest, RethrowsLowestSubmissionIndexException) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  for (int i = 0; i < 12; ++i) {
    group.run([i] {
      if (i == 2) throw Error("fail 2");
      if (i == 9) throw Error("fail 9");
    });
  }
  try {
    group.wait();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "fail 2");
  }
  // The pool survives; so does the group (wait is repeatable).
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(TaskGroupTest, StolenSubtaskExceptionIsSafe) {
  // Subtasks submitted from inside a pool task land on the owner's deque;
  // with several workers some are stolen. A throwing stolen subtask must
  // reach wait() as an exception without wedging the group, the thief, or
  // the pool. Repeat to give the steal path real exercise.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::future<int> outer = pool.submit([&pool, round]() -> int {
      TaskGroup group(pool);
      std::atomic<int> ok{0};
      for (int i = 0; i < 32; ++i) {
        group.run([i, round, &ok] {
          if ((i + round) % 7 == 0) throw Error("stolen boom");
          ++ok;
        });
      }
      try {
        group.wait();
        ADD_FAILURE() << "expected Error in round " << round;
      } catch (const Error&) {
      }
      return ok.load();
    });
    EXPECT_GE(outer.get(), 0);
  }
  EXPECT_EQ(pool.submit([] { return 13; }).get(), 13);
}

TEST(TaskGroupTest, WaitJoinsLaterRuns) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 1);
  group.run([&ran] { ++ran; });
  group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 3);
}

}  // namespace
}  // namespace cayman
