// Tests for the support thread pool: future plumbing, ordered parallel
// maps, exception propagation, and concurrent-submission stress (the TSan
// CI job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "support/error.h"
#include "support/thread_pool.h"

namespace cayman {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, DefaultWorkersIsNeverZero) {
  EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
  ThreadPool zero(0);  // clamped, not rejected
  EXPECT_EQ(zero.workers(), 1u);
}

TEST(ThreadPoolTest, MoreWorkersThanCoresIsFine) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.workers(), 8u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 999LL * 1000 / 2);
}

TEST(ThreadPoolTest, ParallelIndexMapPreservesOrder) {
  ThreadPool pool(4);
  std::vector<size_t> results =
      parallelIndexMap(pool, 257, [](size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 257u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelIndexMapMatchesSequentialExactly) {
  // The determinism contract: a pure fn(i) yields the same vector whether
  // the pool has 1 worker or many.
  auto fn = [](size_t i) {
    double x = 1.0;
    for (size_t k = 0; k < i % 17; ++k) x = x * 1.5 + static_cast<double>(i);
    return x;
  };
  ThreadPool one(1);
  ThreadPool many(8);
  std::vector<double> sequential = parallelIndexMap(one, 300, fn);
  std::vector<double> parallel = parallelIndexMap(many, 300, fn);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i], parallel[i]);  // bit-identical, no tolerance
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.submit([]() -> int { throw Error("task failed"); });
  EXPECT_THROW(future.get(), Error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ConcurrentSubmittersStress) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &total] {
      std::vector<std::future<int>> futures;
      for (int i = 1; i <= 100; ++i) {
        futures.push_back(pool.submit([i] { return i; }));
      }
      for (auto& f : futures) total += f.get();
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4LL * 100 * 101 / 2);
}

TEST(ThreadPoolTest, ParallelIndexMapSurfacesFirstErrorByIndex) {
  ThreadPool pool(4);
  // Several indices fail; parallelIndexMap collects futures in index order,
  // so the caller must see index 3's error, never index 7's, regardless of
  // which worker throws first in wall-clock time.
  try {
    parallelIndexMap(pool, 16, [](size_t i) -> int {
      if (i == 3) throw Error("boom at 3");
      if (i == 7) throw Error("boom at 7");
      return static_cast<int>(i);
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom at 3");
  }
  // Abandoned sibling futures (including the other throwing one) must not
  // deadlock or poison the pool.
  EXPECT_EQ(pool.submit([] { return 11; }).get(), 11);
}

TEST(ThreadPoolTest, EveryTaskThrowingDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([]() -> int { throw Error("always"); }));
  }
  int caught = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const Error&) {
      ++caught;
    }
  }
  EXPECT_EQ(caught, 64);
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ThreadPoolTest, NonStdExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future = pool.submit([]() -> int { throw 42; });
  try {
    future.get();
    FAIL() << "expected int exception";
  } catch (int value) {
    EXPECT_EQ(value, 42);
  }
  EXPECT_EQ(pool.submit([] { return 6; }).get(), 6);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&ran] { ++ran; }));
    }
  }  // destructor joins after the queue drains
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace cayman
