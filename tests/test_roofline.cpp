// Property and integration tests for the roofline classifier behind
// GenerateMode::Guided: known intensities map to known labels, labels are
// invariant under uniform profile scaling (intensity is a per-entry ratio),
// the bandwidth-saturating unroll factor is monotone in bytes-per-iteration,
// and the full analysis produces self-consistent, memoized classifications
// on real kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/roofline.h"
#include "sim/interpreter.h"
#include "test_kernels.h"

namespace cayman::analysis {
namespace {

using RA = RooflineAnalysis;

/// Module -> profiled wPST -> RooflineAnalysis, mirroring what the
/// accelerator model builds lazily.
struct Fixture {
  explicit Fixture(std::unique_ptr<ir::Module> m)
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        roofline(wpst, profile, tech, hls::InterfaceTiming{}, 2.0) {}

  std::unique_ptr<ir::Module> module;
  WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  RooflineAnalysis roofline;
};

const Region* loopRegionByHeader(const WPst& wpst, const char* header) {
  for (const Region* r : wpst.allRegions()) {
    if (r->kind() == RegionKind::Loop && r->block()->name() == header) {
      return r;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// classifyIntensity: known intensities -> expected labels.
// ---------------------------------------------------------------------------

TEST(RooflineTest, KnownIntensitiesClassify) {
  const double balance = 0.125;  // 1 op/cycle over 8 bytes/cycle
  // At or below half the balance: memory-bound.
  EXPECT_EQ(RA::classifyIntensity(0.0, balance), Bottleneck::MemoryBound);
  EXPECT_EQ(RA::classifyIntensity(0.03125, balance), Bottleneck::MemoryBound);
  EXPECT_EQ(RA::classifyIntensity(0.0625, balance), Bottleneck::MemoryBound);
  // Within the 2x hysteresis band: balanced.
  EXPECT_EQ(RA::classifyIntensity(0.0626, balance), Bottleneck::Balanced);
  EXPECT_EQ(RA::classifyIntensity(0.125, balance), Bottleneck::Balanced);
  EXPECT_EQ(RA::classifyIntensity(0.2499, balance), Bottleneck::Balanced);
  // At or above twice the balance: compute-bound.
  EXPECT_EQ(RA::classifyIntensity(0.25, balance), Bottleneck::ComputeBound);
  EXPECT_EQ(RA::classifyIntensity(64.0, balance), Bottleneck::ComputeBound);
  EXPECT_EQ(RA::classifyIntensity(std::numeric_limits<double>::infinity(),
                                  balance),
            Bottleneck::ComputeBound);
}

// ---------------------------------------------------------------------------
// Label invariance under profile scaling: running the same kernel K times
// longer multiplies per-entry op and byte counts alike, so the intensity
// ratio — and with it the label — cannot move. Power-of-two scales keep the
// float division exact, so the equality is bit-exact, not approximate.
// ---------------------------------------------------------------------------

struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

TEST(RooflineTest, LabelInvariantUnderProfileScaling) {
  Lcg rng(20260808);
  const double scales[] = {2.0, 4.0, 0.5, 0.25, 1024.0};
  for (int trial = 0; trial < 200; ++trial) {
    double ops = static_cast<double>(rng.next() % 10000 + 1);
    double bytes = static_cast<double>(rng.next() % 10000 + 1);
    double balance = 1.0 / static_cast<double>(rng.next() % 64 + 1);
    Bottleneck base = RA::classifyIntensity(ops / bytes, balance);
    for (double s : scales) {
      EXPECT_EQ(RA::classifyIntensity((s * ops) / (s * bytes), balance), base)
          << "ops " << ops << " bytes " << bytes << " scale " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// saturatingUnroll: monotone non-increasing in bytes-per-iteration, clamped
// to [1, kUnboundedUnroll], unbounded without memory traffic.
// ---------------------------------------------------------------------------

TEST(RooflineTest, SaturatingUnrollMonotoneInBytesPerIteration) {
  const double bw = 8.0;
  for (unsigned recMii : {1u, 2u, 8u, 64u}) {
    unsigned prev = RA::kUnboundedUnroll;
    EXPECT_EQ(RA::saturatingUnroll(recMii, 0.0, bw), RA::kUnboundedUnroll);
    for (double bytes = 0.5; bytes <= 4096.0; bytes *= 2.0) {
      unsigned u = RA::saturatingUnroll(recMii, bytes, bw);
      EXPECT_LE(u, prev) << "recMii " << recMii << " bytes " << bytes;
      EXPECT_GE(u, 1u);
      prev = u;
    }
    // Gigantic per-iteration traffic pins the factor at 1.
    EXPECT_EQ(RA::saturatingUnroll(recMii, 1e12, bw), 1u);
  }
  // Exact interior value: II floor from bandwidth is u*bytes/BW, so with
  // recMII 8, 16 B/iter and 8 B/cycle the roofs cross at u = 4.
  EXPECT_EQ(RA::saturatingUnroll(8, 16.0, 8.0), 4u);
}

// ---------------------------------------------------------------------------
// Full analysis on real kernels: self-consistency and the MII label.
// ---------------------------------------------------------------------------

TEST(RooflineTest, ClassificationsAreSelfConsistentAndMemoized) {
  Fixture f(testing::dotRowsKernel());
  for (const Region* region : f.wpst.allRegions()) {
    const RegionRoofline& r = f.roofline.classify(region);
    EXPECT_GT(r.machineBalance, 0.0);
    if (!region->isCandidate()) continue;
    EXPECT_GE(r.opsPerEntry, 0.0);
    EXPECT_GE(r.flopsPerEntry, 0.0);
    EXPECT_LE(r.flopsPerEntry, r.opsPerEntry);
    if (r.bytesPerEntry > 0.0) {
      EXPECT_DOUBLE_EQ(r.intensity, r.opsPerEntry / r.bytesPerEntry);
    } else {
      EXPECT_TRUE(std::isinf(r.intensity));
    }
    EXPECT_EQ(r.bottleneck,
              RA::classifyIntensity(r.intensity, r.machineBalance));
    EXPECT_GE(r.saturatingUnroll, 1u);
    // Memoized: classify returns the same object, bit for bit.
    const RegionRoofline& again = f.roofline.classify(region);
    EXPECT_EQ(&again, &r);
  }
}

TEST(RooflineTest, RecurrenceLimitedTracksLoopCarriedChains) {
  // out[i+1] = out[i]*0.5: a genuine cross-iteration chain whose recurrence
  // MII meets-or-beats the two-access port bound, so the II is
  // recurrence-pinned.
  Fixture chain(testing::chainKernel());
  const Region* carried = loopRegionByHeader(chain.wpst, "i.header");
  ASSERT_NE(carried, nullptr);
  EXPECT_TRUE(chain.roofline.classify(carried).recurrenceLimited);

  // z[i] += A[i][j]*B[i][j] issues four memory accesses per iteration, so
  // the port bound (resMII 4) dominates the short z-chain recurrence: the
  // loop is port-limited, not recurrence-limited.
  Fixture dot(testing::dotRowsKernel());
  const Region* inner = loopRegionByHeader(dot.wpst, "j.header");
  ASSERT_NE(inner, nullptr);
  EXPECT_FALSE(dot.roofline.classify(inner).recurrenceLimited);

  // y[i] = 2*x[i] + 1: dependence-free streaming loop; the II is limited by
  // ports, not a recurrence.
  Fixture stream(testing::linearKernel());
  const Region* loop = loopRegionByHeader(stream.wpst, "i.header");
  ASSERT_NE(loop, nullptr);
  const RegionRoofline& r = stream.roofline.classify(loop);
  EXPECT_FALSE(r.recurrenceLimited);
  // 16 bytes per iteration against an 8 B/cycle ceiling with recMII 1:
  // bandwidth saturates before any widening pays.
  EXPECT_EQ(r.saturatingUnroll, 1u);
}

}  // namespace
}  // namespace cayman::analysis
