// Tests for the blobio record-stream substrate: hashing, the bounded
// byte codecs, tolerant stream parsing, and atomic publication (including
// the CAYMAN_INJECT_CORRUPT crash-window hooks the recovery tests rely on).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <fstream>
#include <string>
#include <vector>

#include "support/blobio.h"

namespace cayman::support::blobio {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Fresh per-test scratch directory under the system temp dir.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cayman_blobio_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    unsetenv("CAYMAN_INJECT_CORRUPT");
    fs::remove_all(dir_);
  }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 test vector for CRC-32C.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  // Any single bit flip must change the checksum.
  std::string base(64, '\x5a');
  uint32_t clean = crc32c(base);
  for (size_t bit = 0; bit < base.size() * 8; bit += 37) {
    std::string damaged = base;
    damaged[bit / 8] = static_cast<char>(damaged[bit / 8] ^ (1u << (bit % 8)));
    EXPECT_NE(crc32c(damaged), clean) << "bit " << bit;
  }
}

TEST(Fnv1a64Test, MatchesKnownVectorsAndChains) {
  EXPECT_EQ(fnv1a64(""), kFnvOffset);
  // Standard FNV-1a 64 vector.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  // Chaining hashes concatenation.
  EXPECT_EQ(fnv1a64("world", fnv1a64("hello ")), fnv1a64("hello world"));
  EXPECT_NE(fnv1a64("hello"), fnv1a64("hellp"));
}

TEST(ByteCodecTest, RoundTripsEveryPrimitive) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64bits(-1234.5);
  w.str("payload");
  w.str("");
  std::string bytes = w.take();

  ByteReader r(bytes);
  uint8_t a = 0;
  uint32_t b = 0;
  uint64_t c = 0;
  double d = 0;
  std::string s1, s2;
  ASSERT_TRUE(r.u8(a));
  ASSERT_TRUE(r.u32(b));
  ASSERT_TRUE(r.u64(c));
  ASSERT_TRUE(r.f64bits(d));
  ASSERT_TRUE(r.str(s1, 64));
  ASSERT_TRUE(r.str(s2, 64));
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(d, -1234.5);
  EXPECT_EQ(s1, "payload");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(r.done());
  EXPECT_FALSE(r.failed());
}

TEST(ByteCodecTest, DoubleBitsSurviveNan) {
  ByteWriter w;
  w.f64bits(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.bytes());
  double d = 0;
  ASSERT_TRUE(r.f64bits(d));
  EXPECT_TRUE(std::isnan(d));
}

TEST(ByteCodecTest, ReaderFailsStickyOnUnderflow) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  uint64_t big = 0;
  EXPECT_FALSE(r.u64(big));  // only 4 bytes available
  EXPECT_TRUE(r.failed());
  uint8_t small = 0;
  EXPECT_FALSE(r.u8(small));  // sticky: even a fitting read now fails
  EXPECT_FALSE(r.done());
}

TEST(ByteCodecTest, ReaderRejectsOversizedString) {
  ByteWriter w;
  w.str("0123456789");
  ByteReader r(w.bytes());
  std::string s;
  EXPECT_FALSE(r.str(s, 9));  // cap below the declared length
  EXPECT_TRUE(r.failed());
}

TEST(StreamTest, BuildParseRoundTrip) {
  std::vector<std::string> payloads = {"alpha", std::string("\0\x01\x02", 3),
                                       "", "gamma"};
  std::string bytes = buildStream(payloads);
  Limits limits;
  Expected<ParsedStream> parsed = parseStream(bytes, limits, "unit");
  ASSERT_TRUE(parsed.ok()) << parsed.diagnostic().str();
  EXPECT_EQ(parsed.value().version, kFormatVersion);
  EXPECT_EQ(parsed.value().declaredCount, payloads.size());
  EXPECT_EQ(parsed.value().records, payloads);
  EXPECT_EQ(parsed.value().rejectedRecords, 0u);
  EXPECT_FALSE(parsed.value().truncated);
}

TEST(StreamTest, EmptyStreamRoundTrips) {
  std::string bytes = buildStream({});
  Limits limits;
  Expected<ParsedStream> parsed = parseStream(bytes, limits);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().records.empty());
  EXPECT_FALSE(parsed.value().truncated);
}

TEST(StreamTest, BadMagicRejectsWholeStream) {
  std::string bytes = buildStream({"x"});
  bytes[0] = 'X';
  Limits limits;
  Expected<ParsedStream> parsed = parseStream(bytes, limits, "unit");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.diagnostic().stage, Stage::Cache);
  EXPECT_NE(parsed.diagnostic().message.find("magic"), std::string::npos);
}

TEST(StreamTest, UnsupportedVersionRejectsWholeStream) {
  std::string bytes = buildStream({"x"}, kFormatVersion + 1);
  Limits limits;
  EXPECT_FALSE(parseStream(bytes, limits).ok());
}

TEST(StreamTest, CorruptHeaderCrcRejectsWholeStream) {
  std::string bytes = buildStream({"x"});
  // Damage the record-count field; the header CRC must catch it.
  bytes[9] = static_cast<char>(bytes[9] ^ 0x40);
  Limits limits;
  Expected<ParsedStream> parsed = parseStream(bytes, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.diagnostic().message.find("header"), std::string::npos);
}

TEST(StreamTest, ShortHeaderRejectsWholeStream) {
  Limits limits;
  EXPECT_FALSE(parseStream("CYMB", limits).ok());
  EXPECT_FALSE(parseStream("", limits).ok());
}

TEST(StreamTest, CrcDamageSkipsOnlyThatRecord) {
  std::string bytes = buildStream({"first", "second", "third"});
  // Flip a payload byte of "second": header + record1 + prefix2, then 'd'.
  size_t off = kHeaderBytes + kRecordPrefixBytes + 5 + kRecordPrefixBytes + 5;
  ASSERT_EQ(bytes[off], 'd');
  bytes[off] = static_cast<char>(bytes[off] ^ 0x01);
  Limits limits;
  Expected<ParsedStream> parsed = parseStream(bytes, limits);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().rejectedRecords, 1u);
  EXPECT_EQ(parsed.value().records,
            (std::vector<std::string>{"first", "third"}));
  EXPECT_FALSE(parsed.value().truncated);
}

TEST(StreamTest, TruncationKeepsPrefixRecords) {
  std::string bytes = buildStream({"first", "second"});
  // Cut into the middle of the second record's payload.
  std::string cut = bytes.substr(0, bytes.size() - 3);
  Limits limits;
  Expected<ParsedStream> parsed = parseStream(cut, limits);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().truncated);
  EXPECT_EQ(parsed.value().records, (std::vector<std::string>{"first"}));
}

TEST(StreamTest, OversizedRecordLengthStopsAsTruncated) {
  ByteWriter record;
  Limits limits;
  limits.maxRecordBytes = 16;
  std::string big(64, 'z');
  std::string bytes = buildStream({big});
  Expected<ParsedStream> parsed = parseStream(bytes, limits);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().truncated);
  EXPECT_TRUE(parsed.value().records.empty());
}

TEST(StreamTest, RecordCountCapRejectsWholeStream) {
  Limits limits;
  limits.maxRecords = 2;
  std::string bytes = buildStream({"a", "b", "c"});
  EXPECT_FALSE(parseStream(bytes, limits).ok());
}

TEST(StreamTest, TrailingGarbageReportsTruncatedFraming) {
  std::string bytes = buildStream({"only"});
  bytes += "garbage past the declared records";
  Limits limits;
  Expected<ParsedStream> parsed = parseStream(bytes, limits);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().truncated);
  EXPECT_EQ(parsed.value().records, (std::vector<std::string>{"only"}));
}

using FileTest = TempDirTest;

TEST_F(FileTest, ReadFileMissingIsNoSuchFile) {
  Limits limits;
  Expected<std::string> bytes = readFile(path("absent.cayc"), limits);
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.diagnostic().message.rfind("no such file", 0), 0u)
      << bytes.diagnostic().message;
  EXPECT_FALSE(fileExists(path("absent.cayc")));
}

TEST_F(FileTest, ReadFileHonoursSizeCap) {
  std::string target = path("big.bin");
  {
    std::ofstream out(target, std::ios::binary);
    out << std::string(128, 'x');
  }
  Limits limits;
  limits.maxFileBytes = 64;
  EXPECT_FALSE(readFile(target, limits).ok());
  limits.maxFileBytes = 256;
  Expected<std::string> bytes = readFile(target, limits);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value().size(), 128u);
}

TEST_F(FileTest, AtomicWritePublishesAndOverwrites) {
  std::string target = path("snap.cayc");
  Expected<uint64_t> first = writeFileAtomic(target, "version-one");
  ASSERT_TRUE(first.ok()) << first.diagnostic().str();
  EXPECT_EQ(first.value(), 11u);
  EXPECT_EQ(slurp(target), "version-one");

  Expected<uint64_t> second = writeFileAtomic(target, "v2");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(slurp(target), "v2");

  // No temp droppings after a clean publish.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(FileTest, AtomicWriteToMissingDirectoryFails) {
  Expected<uint64_t> result =
      writeFileAtomic((dir_ / "nope" / "snap.cayc").string(), "bytes");
  EXPECT_FALSE(result.ok());
}

TEST_F(FileTest, InjectTruncateDamagesPublishedFile) {
  setenv("CAYMAN_INJECT_CORRUPT", "truncate:4", 1);
  std::string target = path("snap.cayc");
  Expected<uint64_t> result = writeFileAtomic(target, "0123456789");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(slurp(target), "0123");
}

TEST_F(FileTest, InjectBitflipDamagesPublishedFile) {
  setenv("CAYMAN_INJECT_CORRUPT", "bitflip:2", 1);
  std::string target = path("snap.cayc");
  ASSERT_TRUE(writeFileAtomic(target, "abcdef").ok());
  std::string got = slurp(target);
  ASSERT_EQ(got.size(), 6u);
  EXPECT_NE(got, "abcdef");
  EXPECT_EQ(got[2], static_cast<char>('c' ^ 0x01));
}

TEST_F(FileTest, InjectTornPublishesPrefixOnly) {
  setenv("CAYMAN_INJECT_CORRUPT", "torn:3", 1);
  std::string target = path("snap.cayc");
  ASSERT_TRUE(writeFileAtomic(target, "0123456789").ok());
  EXPECT_EQ(slurp(target), "012");
}

TEST_F(FileTest, InjectCrashDiesBeforeRenameKeepingOldSnapshot) {
  std::string target = path("snap.cayc");
  ASSERT_TRUE(writeFileAtomic(target, "old-complete-snapshot").ok());

  setenv("CAYMAN_INJECT_CORRUPT", "crash:0", 1);
  Expected<uint64_t> crashed = writeFileAtomic(target, "new-bytes");
  ASSERT_FALSE(crashed.ok());
  EXPECT_NE(crashed.diagnostic().message.find("crash"), std::string::npos);

  // Crash window: old snapshot intact, temp file left behind.
  EXPECT_EQ(slurp(target), "old-complete-snapshot");
  bool sawTemp = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      sawTemp = true;
      EXPECT_EQ(slurp(entry.path().string()), "new-bytes");
    }
  }
  EXPECT_TRUE(sawTemp);

  // Recovery: the next (uninjected) publish succeeds over the survivor.
  unsetenv("CAYMAN_INJECT_CORRUPT");
  ASSERT_TRUE(writeFileAtomic(target, "new-bytes").ok());
  EXPECT_EQ(slurp(target), "new-bytes");
}

TEST_F(FileTest, MalformedInjectSpecFailsTheWriteLoudly) {
  setenv("CAYMAN_INJECT_CORRUPT", "melt:12", 1);
  Expected<uint64_t> result = writeFileAtomic(path("snap.cayc"), "bytes");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.diagnostic().message.find("invalid spec"),
            std::string::npos);
  EXPECT_FALSE(fileExists(path("snap.cayc")));
}

}  // namespace
}  // namespace cayman::support::blobio
