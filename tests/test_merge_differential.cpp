// Differential tests pinning MergeMode::Graph to the MergeMode::Reference
// oracle: value-identical MergeResults over all 28 registered workloads
// across budgets, plus engine-level property tests (non-negative saving, a
// shared-operator-area upper bound, and invariance under unit-extraction
// order). The edge-heap matching is only allowed to be faster — never
// different.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cayman/framework.h"
#include "workloads/workloads.h"

namespace cayman::merge {
namespace {

void expectSameResult(const MergeResult& graph, const MergeResult& reference,
                      const std::string& context) {
  EXPECT_DOUBLE_EQ(graph.areaBeforeUm2, reference.areaBeforeUm2) << context;
  EXPECT_DOUBLE_EQ(graph.areaAfterUm2, reference.areaAfterUm2) << context;
  EXPECT_EQ(graph.mergeSteps, reference.mergeSteps) << context;
  EXPECT_EQ(graph.reusableAccelerators, reference.reusableAccelerators)
      << context;
  EXPECT_DOUBLE_EQ(graph.avgKernelsPerReusable,
                   reference.avgKernelsPerReusable)
      << context;
  EXPECT_EQ(graph.unitsExtracted, reference.unitsExtracted) << context;
  EXPECT_EQ(graph.pairsEvaluated, reference.pairsEvaluated) << context;
}

// Every workload, several budgets: both engines must agree on every value of
// the MergeResult, and the default Graph engine must never report less
// saving than the fixed Reference greedy.
TEST(MergeDifferentialTest, GraphMatchesReferenceOnAllWorkloads) {
  for (const workloads::WorkloadInfo& info : workloads::all()) {
    Framework fw(info.build());
    for (double budgetRatio : {0.05, 0.25, 0.65}) {
      std::string context =
          info.name + " budget " + std::to_string(budgetRatio);
      select::Solution best = fw.best(budgetRatio);

      MergeResult graph =
          AcceleratorMerger(fw.tech(), MergeMode::Graph).run(best);
      MergeResult reference =
          AcceleratorMerger(fw.tech(), MergeMode::Reference).run(best);
      expectSameResult(graph, reference, context);
      EXPECT_GE(graph.savingPercent(), reference.savingPercent() - 1e-9)
          << context;

      // Bound sanity shared by both engines.
      EXPECT_GE(graph.areaAfterUm2, 0.0) << context;
      EXPECT_LE(graph.areaAfterUm2, graph.areaBeforeUm2 + 1e-6) << context;
      if (!best.accelerators.empty()) {
        EXPECT_LE(graph.mergeSteps,
                  static_cast<int>(best.accelerators.size()) - 1)
            << context << ": each step must union two distinct groups";
      }
    }
  }
}

// --------------------------------------------------------------------------
// Engine-level property tests on synthetic units (no pipeline, no clock).
// --------------------------------------------------------------------------

/// Units engineered so every pair saving is distinct: unit i carries i+1
/// wide FMuls and n-i wide FDivs, giving a strictly varying shared-op mix.
std::vector<Unit> distinctSyntheticUnits(size_t n) {
  std::vector<Unit> units(n);
  for (size_t i = 0; i < n; ++i) {
    units[i].ops[{ir::Opcode::FMul, true}] = static_cast<unsigned>(i + 1);
    units[i].ops[{ir::Opcode::FDiv, true}] = static_cast<unsigned>(n - i);
    units[i].acceleratorIndex = i;
  }
  return units;
}

double totalSharedOpArea(const std::vector<Unit>& units,
                         const hls::TechLibrary& tech) {
  double total = 0.0;
  for (const Unit& unit : units) {
    for (const auto& [opClass, count] : unit.ops) {
      const ir::Type* type =
          opClass.second ? ir::Type::i64() : ir::Type::i32();
      total += count * tech.opInfo(opClass.first, type).areaUm2;
    }
  }
  return total;
}

TEST(MergePropertyTest, SavingNonNegativeAndBounded) {
  // The matched saving is a sum of positive edges, and no edge can save more
  // than the duplicate operator area it eliminates — so the total is
  // bounded by the units' combined operator area.
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  for (size_t n : {2u, 5u, 9u, 16u}) {
    std::vector<Unit> units = distinctSyntheticUnits(n);
    double bound = totalSharedOpArea(units, tech);
    for (MergeMode mode : {MergeMode::Graph, MergeMode::Reference}) {
      std::vector<Unit> copy = units;
      UnionFind groups(n);
      MatchStats stats;
      double saving = mode == MergeMode::Graph
                          ? matchUnitsGraph(copy, tech, groups, stats)
                          : matchUnitsReference(copy, tech, groups, stats);
      EXPECT_GE(saving, 0.0) << n;
      EXPECT_LE(saving, bound) << n;
      EXPECT_LE(stats.steps, static_cast<int>(n) - 1) << n;
    }
  }
}

TEST(MergePropertyTest, ResultInvariantUnderUnitOrder) {
  // Tie-breaks are by unit index, so order invariance only holds when edge
  // weights are distinct — the synthetic units guarantee that, and the
  // guard below fails loudly if the construction ever stops doing so.
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  constexpr size_t kN = 7;
  std::vector<Unit> base = distinctSyntheticUnits(kN);
  std::set<double> initialSavings;
  for (size_t i = 0; i < kN; ++i) {
    for (size_t j = i + 1; j < kN; ++j) {
      initialSavings.insert(unitPairSaving(tech, base[i], base[j]));
    }
  }
  ASSERT_EQ(initialSavings.size(), kN * (kN - 1) / 2)
      << "synthetic units must have pairwise-distinct savings";

  UnionFind baseGroups(kN);
  MatchStats baseStats;
  std::vector<Unit> baseCopy = base;
  double baseSaving = matchUnitsGraph(baseCopy, tech, baseGroups, baseStats);

  // A handful of deterministic permutations, including full reversal.
  std::vector<std::vector<size_t>> orders;
  std::vector<size_t> identity(kN);
  for (size_t i = 0; i < kN; ++i) identity[i] = i;
  std::vector<size_t> reversed(identity.rbegin(), identity.rend());
  orders.push_back(reversed);
  std::vector<size_t> rotated = identity;
  std::rotate(rotated.begin(), rotated.begin() + 3, rotated.end());
  orders.push_back(rotated);
  std::vector<size_t> swapped = identity;
  std::swap(swapped[0], swapped[kN - 1]);
  std::swap(swapped[2], swapped[4]);
  orders.push_back(swapped);

  for (const std::vector<size_t>& order : orders) {
    std::vector<Unit> permuted;
    for (size_t index : order) permuted.push_back(base[index]);
    for (MergeMode mode : {MergeMode::Graph, MergeMode::Reference}) {
      std::vector<Unit> copy = permuted;
      UnionFind groups(kN);
      MatchStats stats;
      double saving = mode == MergeMode::Graph
                          ? matchUnitsGraph(copy, tech, groups, stats)
                          : matchUnitsReference(copy, tech, groups, stats);
      EXPECT_DOUBLE_EQ(saving, baseSaving);
      EXPECT_EQ(stats.steps, baseStats.steps);
    }
  }
}

TEST(MergePropertyTest, EnginesAgreeOnSyntheticPopulations) {
  // Larger synthetic populations with several units per accelerator, seeded
  // LCG op mixes: the lazy heap and the full-rescoring greedy must stay
  // value-identical step for step.
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (size_t accels : {6u, 12u, 24u}) {
    std::vector<Unit> units;
    for (size_t a = 0; a < accels; ++a) {
      size_t perAccel = 1 + next() % 3;
      for (size_t u = 0; u < perAccel; ++u) {
        Unit unit;
        unit.acceleratorIndex = a;
        unit.ops[{ir::Opcode::FMul, true}] = 1 + next() % 4;
        if (next() % 2) unit.ops[{ir::Opcode::FAdd, true}] = 1 + next() % 3;
        if (next() % 3 == 0) unit.ops[{ir::Opcode::FDiv, true}] = 1;
        units.push_back(std::move(unit));
      }
    }
    std::vector<Unit> graphUnits = units;
    std::vector<Unit> referenceUnits = units;
    UnionFind graphGroups(accels), referenceGroups(accels);
    MatchStats graphStats, referenceStats;
    double graphSaving =
        matchUnitsGraph(graphUnits, tech, graphGroups, graphStats);
    double referenceSaving = matchUnitsReference(referenceUnits, tech,
                                                 referenceGroups,
                                                 referenceStats);
    EXPECT_DOUBLE_EQ(graphSaving, referenceSaving) << accels;
    EXPECT_EQ(graphStats.steps, referenceStats.steps) << accels;
    for (size_t a = 0; a < accels; ++a) {
      EXPECT_EQ(graphGroups.find(a) == graphGroups.find(0),
                referenceGroups.find(a) == referenceGroups.find(0))
          << accels << " accel " << a;
    }
    // The heap engine never scores more pairs than the quadratic rescan.
    EXPECT_LE(graphStats.pairsScored, referenceStats.pairsScored) << accels;
  }
}

}  // namespace
}  // namespace cayman::merge
