// Concurrency stress for the model's sharded generate cache and striped
// schedule cache (the TSan CI job runs this binary), plus the container-
// complexity regression for the sorted schedule buckets: lookups cost
// O(log entries) signature comparisons where the old linear bucket scan
// paid O(entries).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "accel/model.h"
#include "accel/model_cache.h"
#include "hls/interface.h"
#include "support/thread_pool.h"
#include "test_kernels.h"

namespace cayman::accel {
namespace {

namespace fs = std::filesystem;

struct Pipeline {
  explicit Pipeline(std::unique_ptr<ir::Module> m, ModelParams params = {})
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        model(wpst, profile, tech, hls::InterfaceTiming{}, params) {}

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  AcceleratorModel model;
};

std::vector<const analysis::Region*> allRegions(const analysis::WPst& wpst) {
  std::vector<const analysis::Region*> regions;
  for (const analysis::Region* r : wpst.allRegions()) regions.push_back(r);
  return regions;
}

TEST(ParallelGenerateTest, ConcurrentGenerateReturnsOneStableList) {
  // Many threads racing generate() on the same regions: exactly one cold
  // generation per region must win, and every caller must get a reference
  // to the same cached list.
  Pipeline p(testing::dotRowsKernel());
  std::vector<const analysis::Region*> regions = allRegions(p.wpst);
  ASSERT_FALSE(regions.empty());

  constexpr int kThreads = 8;
  std::vector<std::vector<const std::vector<AcceleratorConfig>*>> seen(
      kThreads, std::vector<const std::vector<AcceleratorConfig>*>(
                    regions.size(), nullptr));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < regions.size(); ++i) {
        // Distinct walk orders per thread, so claims collide from both ends.
        size_t at = (t % 2 == 0) ? i : regions.size() - 1 - i;
        seen[t][at] = &p.model.generate(regions[at]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    for (size_t i = 0; i < regions.size(); ++i) {
      EXPECT_EQ(seen[t][i], seen[0][i]) << "thread " << t << " region " << i;
    }
  }
}

TEST(ParallelGenerateTest, ConcurrentGenerateAllWithPoolFanOut) {
  // generateAll on a pooled model racing against itself (the concurrent-
  // explore shape): nested TaskGroup fan-out, claim deferral, and the
  // striped schedule cache all under contention.
  ThreadPool pool(4);
  ModelParams params;
  params.pool = &pool;
  Pipeline p(testing::dotRowsKernel(), params);
  std::vector<const analysis::Region*> regions = allRegions(p.wpst);

  constexpr int kCallers = 4;
  std::vector<std::vector<const std::vector<AcceleratorConfig>*>> results(
      kCallers);
  std::vector<std::thread> threads;
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = p.model.generateAll(regions); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kCallers; ++t) {
    ASSERT_EQ(results[t].size(), results[0].size());
    for (size_t i = 0; i < results[t].size(); ++i) {
      EXPECT_EQ(results[t][i], results[0][i]);
    }
  }
}

TEST(ParallelGenerateTest, PooledGenerateAllMatchesSerialModel) {
  // The determinism contract at the model level: a pooled generateAll and a
  // serial one produce identical config lists (values, not just counts).
  ThreadPool pool(4);
  ModelParams pooled;
  pooled.pool = &pool;
  Pipeline parallel(testing::dotRowsKernel(), pooled);
  Pipeline serial(testing::dotRowsKernel());

  std::vector<const analysis::Region*> parallelRegions =
      allRegions(parallel.wpst);
  std::vector<const analysis::Region*> serialRegions = allRegions(serial.wpst);
  ASSERT_EQ(parallelRegions.size(), serialRegions.size());

  std::vector<const std::vector<AcceleratorConfig>*> a =
      parallel.model.generateAll(parallelRegions);
  std::vector<const std::vector<AcceleratorConfig>*> b =
      serial.model.generateAll(serialRegions);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i]->size(), b[i]->size()) << "region " << i;
    for (size_t j = 0; j < a[i]->size(); ++j) {
      EXPECT_EQ((*a[i])[j].cycles, (*b[i])[j].cycles);
      EXPECT_EQ((*a[i])[j].areaUm2, (*b[i])[j].areaUm2);
      EXPECT_EQ((*a[i])[j].loops.size(), (*b[i])[j].loops.size());
    }
  }
  // So do the design-space totals (selector-facing counters).
  EXPECT_EQ(parallel.model.estimateCalls(), serial.model.estimateCalls());
  EXPECT_EQ(parallel.model.candidatesTotal(), serial.model.candidatesTotal());
}

TEST(ParallelGenerateTest, ConcurrentGenerateWithPersistentCache) {
  // The persistent cache's record path under racing cold generations: each
  // region records exactly once, and a warm model replays identical lists.
  fs::path dir = fs::temp_directory_path() / "cayman_parallel_generate";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ThreadPool pool(4);
  ModelParams params;
  params.pool = &pool;
  Pipeline cold(testing::dotRowsKernel(), params);
  uint64_t irHash = ModelCache::irContentHash(*cold.module);
  uint64_t fp = ModelCache::modelFingerprint(cold.model.params(), cold.tech,
                                             cold.model.timing());
  ModelCache coldCache(dir.string(), cold.wpst, irHash, fp);
  coldCache.load();
  cold.model.attachPersistentCache(&coldCache);

  std::vector<const analysis::Region*> regions = allRegions(cold.wpst);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] { (void)cold.model.generateAll(regions); });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(coldCache.save().ok());

  Pipeline warm(testing::dotRowsKernel(), params);
  ModelCache warmCache(dir.string(), warm.wpst, irHash, fp);
  EXPECT_GE(warmCache.load(), 1u);
  warm.model.attachPersistentCache(&warmCache);
  std::vector<const analysis::Region*> warmRegions = allRegions(warm.wpst);
  std::vector<const std::vector<AcceleratorConfig>*> warmLists =
      warm.model.generateAll(warmRegions);
  ASSERT_EQ(warmLists.size(), regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    const std::vector<AcceleratorConfig>& coldList =
        cold.model.generate(regions[i]);
    ASSERT_EQ(warmLists[i]->size(), coldList.size()) << "region " << i;
    for (size_t j = 0; j < coldList.size(); ++j) {
      EXPECT_EQ((*warmLists[i])[j].cycles, coldList[j].cycles);
      EXPECT_EQ((*warmLists[i])[j].areaUm2, coldList[j].areaUm2);
    }
  }
  EXPECT_GE(warmCache.stats().diskHits, 1u);
  fs::remove_all(dir);
}

TEST(SchedCacheComplexityTest, SortedBucketStaysLogarithmic) {
  // The satellite regression: the schedule cache's buckets are sorted maps
  // over interface signatures. n inserts + n lookups must cost O(n log n)
  // signature comparisons; the linear scan this replaced paid O(n^2)
  // (~65k comparisons at n = 256 vs ~5k for a red-black tree).
  struct CountingLess {
    std::atomic<uint64_t>* comparisons = nullptr;
    bool operator()(const std::vector<hls::AccessIface>& a,
                    const std::vector<hls::AccessIface>& b) const {
      comparisons->fetch_add(1, std::memory_order_relaxed);
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end());
    }
  };
  constexpr uint64_t kEntries = 256;
  std::atomic<uint64_t> comparisons{0};
  std::map<std::vector<hls::AccessIface>, int, CountingLess> bucket(
      CountingLess{&comparisons});

  auto signatureAt = [](uint64_t i) {
    std::vector<hls::AccessIface> signature(3);
    signature[2].footprintBytes = i;  // distinct in the last element: worst
    signature[2].partitions = 1 + static_cast<unsigned>(i % 4);  // case order
    return signature;
  };
  for (uint64_t i = 0; i < kEntries; ++i) {
    // Deterministically shuffled insert order (37 is coprime to 256).
    bucket.emplace(signatureAt((i * 37) % kEntries), static_cast<int>(i));
  }
  ASSERT_EQ(bucket.size(), kEntries);
  for (uint64_t i = 0; i < kEntries; ++i) {
    EXPECT_NE(bucket.find(signatureAt(i)), bucket.end());
  }
  // Generous tree bound: 2 ops/entry x (2*log2(n) + 4) comparisons/op.
  const uint64_t logBound = 2 * kEntries *
                            (2 * static_cast<uint64_t>(std::log2(kEntries)) +
                             4);
  EXPECT_LE(comparisons.load(), logBound);           // ~10k ceiling
  EXPECT_GE(comparisons.load(), kEntries);           // the counter is live
  EXPECT_LT(logBound, kEntries * kEntries / 2);      // linear scan would fail
}

TEST(SchedCacheComplexityTest, ModelComparisonCountIsDeterministic) {
  // Two fresh identical models do identical schedule-cache work, and a
  // memoized re-generate touches the schedule cache zero further times.
  Pipeline a(testing::dotRowsKernel());
  Pipeline b(testing::dotRowsKernel());
  a.model.warmGenerateCache();
  b.model.warmGenerateCache();
  EXPECT_GT(a.model.schedSignatureComparisons(), 0u);
  EXPECT_EQ(a.model.schedSignatureComparisons(),
            b.model.schedSignatureComparisons());

  uint64_t before = a.model.schedSignatureComparisons();
  a.model.warmGenerateCache();  // pure cache hits
  EXPECT_EQ(a.model.schedSignatureComparisons(), before);
}

TEST(SchedCacheComplexityTest, AccessIfaceOrderIsConsistentWithEquality) {
  // Strict-weak-order prerequisite for keying sorted containers: equal iff
  // neither is less.
  std::vector<hls::AccessIface> samples(5);
  samples[1].kind = hls::IfaceKind::Decoupled;
  samples[2].partitions = 8;
  samples[3].footprintBytes = 1024;
  samples[4].promoted = true;
  for (const hls::AccessIface& x : samples) {
    EXPECT_FALSE(x < x);
    for (const hls::AccessIface& y : samples) {
      EXPECT_EQ(x == y, !(x < y) && !(y < x));
      if (x < y) EXPECT_FALSE(y < x);
    }
  }
}

}  // namespace
}  // namespace cayman::accel
