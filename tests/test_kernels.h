// Shared kernel builders for the test suite.
#pragma once

#include "ir/verifier.h"
#include "workloads/kernel_builder.h"

namespace cayman::testing {

/// y[i] = 2*x[i] + 1 over [0, n): dependence-free streaming loop
/// (the paper's Fig. 4 example shape).
inline std::unique_ptr<ir::Module> linearKernel(int64_t n = 64) {
  auto module = std::make_unique<ir::Module>("linear");
  auto* x = module->addGlobal("x", ir::Type::f64(), static_cast<uint64_t>(n));
  auto* y = module->addGlobal("y", ir::Type::f64(), static_cast<uint64_t>(n));
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, n, "i");
  ir::Value* v = kb.ir().fadd(
      kb.ir().fmul(kb.loadAt(x, i), kb.ir().f64(2.0)), kb.ir().f64(1.0));
  kb.storeAt(y, i, v);
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

/// z[i] += A[i][j]*B[i][j]: nested loops, inner accumulation into z[i]
/// (the paper's Fig. 2 "dot-product" example shape).
inline std::unique_ptr<ir::Module> dotRowsKernel(int64_t n = 16,
                                                 int64_t m = 8) {
  auto module = std::make_unique<ir::Module>("dotrows");
  auto* a = module->addGlobal("A", ir::Type::f64(),
                              static_cast<uint64_t>(n * m));
  auto* b = module->addGlobal("B", ir::Type::f64(),
                              static_cast<uint64_t>(n * m));
  auto* z = module->addGlobal("z", ir::Type::f64(), static_cast<uint64_t>(n));
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, n, "i");
  ir::Value* j = kb.beginLoop(0, m, "j");
  ir::Value* idx = kb.idx2(i, j, m);
  ir::Value* prod = kb.ir().fmul(kb.loadAt(a, idx), kb.loadAt(b, idx));
  ir::Value* sum = kb.ir().fadd(kb.loadAt(z, i), prod);
  kb.storeAt(z, i, sum);
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

/// out[i+1] = out[i]*0.5: genuine cross-iteration dependence, never
/// unrollable.
inline std::unique_ptr<ir::Module> chainKernel(int64_t n = 64) {
  auto module = std::make_unique<ir::Module>("chain");
  auto* out = module->addGlobal("out", ir::Type::f64(),
                                static_cast<uint64_t>(n));
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, n - 1, "i");
  ir::Value* scaled = kb.ir().fmul(kb.loadAt(out, i), kb.ir().f64(0.5));
  kb.storeAt(out, kb.ir().add(i, kb.ir().i64(1)), scaled);
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

}  // namespace cayman::testing
